package cachesim

import (
	"fmt"
	"sync"

	"github.com/perfmetrics/eventlens/internal/par"
)

// fastrun.go executes many sweep points through the optimized engine. The
// whole (task × component × residue-class) space flattens into independent
// execution units that fan out through par.ForErr under the caller's worker
// budget — one giant Mem-region chase no longer serializes a collection,
// because its cache side is arithmetic (plan.go analysis 1) and its TLB side
// splits into set-residue chunks (analysis 2). Every unit writes only its
// own slot of a pre-sized counter slice, and reduction sums uint64 counters
// in fixed order, so results are bit-identical to the reference simulator
// for any worker count — the equivalence property tests in fast_test.go and
// the repo-level determinism suite both prove it.

// SweepTask is one chase execution request: a sweep point plus the seed of
// its chain permutation.
type SweepTask struct {
	Point SweepPoint
	Seed  int64
}

// unitCounts carries one execution unit's counters out of the worker pool.
type unitCounts struct {
	hits, misses []uint64
	bottom       uint64
	accesses     uint64
}

// execUnit names one replayable chunk: a task's cache or TLB component,
// restricted to one residue group of its plan.
type execUnit struct {
	task  int
	group int
	tlb   bool
}

// RunSweepTasks runs every task — warmup traversal, counter reset, passes
// measured traversals — and returns one ChaseResult per task, bit-identical
// to calling RunSweepPointTLB per task with the same arguments. workers
// follows the par convention (0 = GOMAXPROCS, 1 = serial).
func RunSweepTasks(cfgs []LevelConfig, tlbCfgs []TLBConfig, tasks []SweepTask, passes, workers int) ([]*ChaseResult, error) {
	// Validate geometry once through the reference constructors so the fast
	// path rejects exactly what the reference path rejects.
	h, err := NewHierarchy(cfgs)
	if err != nil {
		return nil, err
	}
	lineShift := h.lineShift
	if len(tlbCfgs) > 0 {
		if _, err := NewTLBHierarchy(tlbCfgs); err != nil {
			return nil, err
		}
	}
	if passes < 1 {
		return nil, fmt.Errorf("cachesim: passes must be >= 1, got %d", passes)
	}

	// Phase 1: resolve every task's plan (cache-hit or build) concurrently.
	plans := make([]*chasePlan, len(tasks))
	err = par.ForErr(workers, len(tasks), func(i int) error {
		p, err := planFor(cfgs, tlbCfgs, ChaseConfig{
			Elements:    tasks[i].Point.Elements,
			StrideBytes: tasks[i].Point.StrideBytes,
			Seed:        tasks[i].Seed,
		}, lineShift)
		plans[i] = p
		return err
	})
	if err != nil {
		return nil, err
	}

	// Phase 2: enumerate units deterministically and replay them under the
	// worker budget. Engines recycle through pools — resetState is O(1).
	var units []execUnit
	for ti, p := range plans {
		for g := 0; g+1 < len(p.cacheStarts); g++ {
			if p.cacheStarts[g+1] > p.cacheStarts[g] {
				units = append(units, execUnit{task: ti, group: g})
			}
		}
		for g := 0; g+1 < len(p.tlbStarts); g++ {
			if p.tlbStarts[g+1] > p.tlbStarts[g] {
				units = append(units, execUnit{task: ti, group: g, tlb: true})
			}
		}
	}
	counts := make([]unitCounts, len(units))
	cachePools := make([]sync.Pool, len(cfgs))
	for f := range cachePools {
		tail := cfgs[f:]
		cachePools[f].New = func() any { return newFastCacheSim(tail, lineShift) }
	}
	var tlbPool sync.Pool
	tlbPool.New = func() any { return newFastTLBSim(tlbCfgs) }
	err = par.ForErr(workers, len(units), func(ui int) error {
		u := units[ui]
		p := plans[u.task]
		var keys []uint32
		var sim *fastSim
		if u.tlb {
			keys = p.tlbKeys[p.tlbStarts[u.group]:p.tlbStarts[u.group+1]]
			sim = tlbPool.Get().(*fastSim)
			defer tlbPool.Put(sim)
		} else {
			keys = p.cacheKeys[p.cacheStarts[u.group]:p.cacheStarts[u.group+1]]
			sim = cachePools[p.firstSim].Get().(*fastSim)
			defer cachePools[p.firstSim].Put(sim)
		}
		sim.resetState()
		sim.replay(keys)
		sim.resetCounters()
		for pass := 0; pass < passes; pass++ {
			sim.replay(keys)
		}
		c := &counts[ui]
		c.hits = make([]uint64, len(sim.levels))
		c.misses = make([]uint64, len(sim.levels))
		for li := range sim.levels {
			c.hits[li] = sim.levels[li].hits
			c.misses[li] = sim.levels[li].misses
		}
		c.bottom, c.accesses = sim.bottom, sim.accesses
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Phase 3: reduce per task in fixed order. Counter totals are exact
	// uint64 sums over disjoint residue classes, and skipped levels follow
	// the all-miss arithmetic, so the float divisions below see the same
	// integer operands the reference produced.
	results := make([]*ChaseResult, len(tasks))
	unitIdx := 0
	for ti, p := range plans {
		nl := len(cfgs)
		hits := make([]uint64, nl)
		misses := make([]uint64, nl)
		var mem, cacheAcc uint64
		tlbMisses := make([]uint64, len(tlbCfgs))
		var walks, tlbAcc uint64
		for ; unitIdx < len(units) && units[unitIdx].task == ti; unitIdx++ {
			c := &counts[unitIdx]
			if units[unitIdx].tlb {
				for li := range tlbMisses {
					tlbMisses[li] += c.misses[li]
				}
				walks += c.bottom
				tlbAcc += c.accesses
			} else {
				for li := range c.hits {
					hits[p.firstSim+li] += c.hits[li]
					misses[p.firstSim+li] += c.misses[li]
				}
				mem += c.bottom
				cacheAcc += c.accesses
			}
		}
		n := uint64(p.cfg.Elements) * uint64(passes)
		for li := 0; li < p.firstSim; li++ {
			misses[li] = n
		}
		if p.firstSim == nl {
			// Whole cache side is arithmetic: every access misses all levels
			// and goes to memory.
			mem, cacheAcc = n, n
		}
		if cacheAcc != n || (len(tlbCfgs) > 0 && tlbAcc != n) {
			return nil, fmt.Errorf("cachesim: internal: sharded access count %d/%d != %d for %s",
				cacheAcc, tlbAcc, n, tasks[ti].Point.Name())
		}
		res := &ChaseResult{Config: p.cfg, Accesses: n}
		nf := float64(n)
		for li := 0; li < nl; li++ {
			res.HitRate = append(res.HitRate, float64(hits[li])/nf)
			res.MissRate = append(res.MissRate, float64(misses[li])/nf)
		}
		res.MemRate = float64(mem) / nf
		if len(tlbCfgs) > 0 {
			for li := range tlbCfgs {
				res.TLBMissRate = append(res.TLBMissRate, float64(tlbMisses[li])/nf)
			}
			res.WalkRate = float64(walks) / nf
		}
		results[ti] = res
	}
	return results, nil
}
