package cachesim

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// pinnedChains locks the Sattolo chain bytes across refactors: these values
// were recorded from the pre-plan BuildChain and must never change, or every
// golden report in the repo silently shifts.
func TestBuildChainPinned(t *testing.T) {
	cases := []struct {
		cfg  ChaseConfig
		want []uint64
	}{
		{ChaseConfig{Elements: 16, StrideBytes: 64, Seed: 7},
			[]uint64{0, 256, 576, 64, 320, 768, 192, 448, 128, 960, 704, 640, 832, 512, 896, 384}},
		{ChaseConfig{Elements: 10, StrideBytes: 128, Base: 4096, Seed: -3},
			[]uint64{4096, 4608, 4480, 5248, 4736, 4864, 5120, 4992, 4352, 4224}},
		{ChaseConfig{Elements: 33, StrideBytes: 32, Seed: 123456789},
			[]uint64{0, 608, 992, 384, 288, 96, 256, 704, 512, 64, 768, 192, 448, 224, 352, 576, 672, 320, 736, 544, 416, 32, 800, 928, 480, 864, 640, 1024, 896, 960, 832, 160, 128}},
	}
	for _, c := range cases {
		got, err := BuildChain(c.cfg)
		if err != nil {
			t.Fatalf("BuildChain(%+v): %v", c.cfg, err)
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("BuildChain(%+v) drifted:\n got %v\nwant %v", c.cfg, got, c.want)
		}
	}
}

// oddGeometry is a deliberately non-power-of-two hierarchy (3, 6, and 12
// sets) exercising the modulo set-index fallback.
func oddGeometry() []LevelConfig {
	return []LevelConfig{
		{Name: "L1", Size: 3 * 2 * 64, Ways: 2, LineSize: 64},
		{Name: "L2", Size: 6 * 4 * 64, Ways: 4, LineSize: 64},
		{Name: "L3", Size: 12 * 4 * 64, Ways: 4, LineSize: 64},
	}
}

// TestFastSimMatchesReferenceCache drives the reference hierarchy and the
// flat engine with identical random access streams and demands equality of
// the served level, all per-level counters, and the memory/access totals
// after every single access — including across an O(1) state reset.
func TestFastSimMatchesReferenceCache(t *testing.T) {
	for _, cfgs := range [][]LevelConfig{TinyConfig(), oddGeometry(), {{Name: "only", Size: 2 * 2 * 64, Ways: 2, LineSize: 64}}} {
		h, err := NewHierarchy(cfgs)
		if err != nil {
			t.Fatal(err)
		}
		fast := newFastCacheSim(cfgs, h.lineShift)
		rng := rand.New(rand.NewSource(42))
		for round := 0; round < 3; round++ {
			// Fresh reference vs O(1)-reset fast engine each round.
			h, err = NewHierarchy(cfgs)
			if err != nil {
				t.Fatal(err)
			}
			fast.resetState()
			for i := 0; i < 20000; i++ {
				addr := uint64(rng.Intn(cfgs[len(cfgs)-1].Size * 3))
				want := h.Access(addr)
				got := fast.access(addr >> h.lineShift)
				if got != want {
					t.Fatalf("%s round %d access %d (addr %d): level %d, reference %d", cfgs[0].Name, round, i, addr, got, want)
				}
			}
			for li := range cfgs {
				wh, wm := h.LevelStats(li)
				if fast.levels[li].hits != wh || fast.levels[li].misses != wm {
					t.Fatalf("level %d counters (%d,%d) != reference (%d,%d)",
						li, fast.levels[li].hits, fast.levels[li].misses, wh, wm)
				}
			}
			if fast.bottom != h.MemAccesses || fast.accesses != h.Accesses {
				t.Fatalf("mem/accesses (%d,%d) != reference (%d,%d)", fast.bottom, fast.accesses, h.MemAccesses, h.Accesses)
			}
		}
	}
}

// TestFastSimMatchesReferenceTLB is the same drive for the translation side.
func TestFastSimMatchesReferenceTLB(t *testing.T) {
	cfgs := []TLBConfig{
		{Name: "DTLB", Entries: 12, Ways: 3, PageBits: 12}, // 4 sets, odd ways
		{Name: "STLB", Entries: 32, Ways: 4, PageBits: 12},
	}
	ref, err := NewTLBHierarchy(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	fast := newFastTLBSim(cfgs)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 20000; i++ {
		addr := uint64(rng.Intn(1 << 18))
		want := ref.Translate(addr)
		got := fast.access(addr >> cfgs[0].PageBits)
		if got != want {
			t.Fatalf("access %d (addr %d): level %d, reference %d", i, addr, got, want)
		}
	}
	for li := range cfgs {
		wh, wm := ref.LevelStats(li)
		if fast.levels[li].hits != wh || fast.levels[li].misses != wm {
			t.Fatalf("TLB level %d counters (%d,%d) != reference (%d,%d)",
				li, fast.levels[li].hits, fast.levels[li].misses, wh, wm)
		}
	}
	if fast.bottom != ref.Walks || fast.accesses != ref.Accesses {
		t.Fatalf("walks/accesses (%d,%d) != reference (%d,%d)", fast.bottom, fast.accesses, ref.Walks, ref.Accesses)
	}
}

// sameResult demands bit-level equality of every ChaseResult field.
func sameResult(t *testing.T, label string, got, want *ChaseResult) {
	t.Helper()
	if got.Config != want.Config || got.Accesses != want.Accesses {
		t.Fatalf("%s: config/accesses %+v/%d != %+v/%d", label, got.Config, got.Accesses, want.Config, want.Accesses)
	}
	bits := func(xs []float64) []uint64 {
		out := make([]uint64, len(xs))
		for i, x := range xs {
			out[i] = math.Float64bits(x)
		}
		return out
	}
	if !reflect.DeepEqual(bits(got.HitRate), bits(want.HitRate)) ||
		!reflect.DeepEqual(bits(got.MissRate), bits(want.MissRate)) ||
		!reflect.DeepEqual(bits(got.TLBMissRate), bits(want.TLBMissRate)) ||
		math.Float64bits(got.MemRate) != math.Float64bits(want.MemRate) ||
		math.Float64bits(got.WalkRate) != math.Float64bits(want.WalkRate) {
		t.Fatalf("%s: rates diverge\n got %+v\nwant %+v", label, got, want)
	}
}

// TestRunSweepTasksMatchesReference proves the planned path bit-identical to
// RunSweepPointTLB over full sweeps of the tiny and odd hierarchies — with
// and without a TLB model, at a sub-line stride (which disables level
// skipping), for one and several measured passes, serial and parallel.
func TestRunSweepTasksMatchesReference(t *testing.T) {
	tlbs := []TLBConfig{
		{Name: "DTLB", Entries: 8, Ways: 2, PageBits: 8}, // tiny pages so TLB regimes vary
		{Name: "STLB", Entries: 32, Ways: 4, PageBits: 8},
	}
	for _, tc := range []struct {
		name   string
		levels []LevelConfig
		tlbs   []TLBConfig
		passes int
	}{
		{"tiny", TinyConfig(), nil, 1},
		{"tiny-tlb", TinyConfig(), tlbs, 2},
		{"odd", oddGeometry(), tlbs, 1},
	} {
		points := BuildSweep(tc.levels, []int{32, 64, 128})
		if len(points) < 6 {
			t.Fatalf("%s: sweep too small (%d points)", tc.name, len(points))
		}
		var tasks []SweepTask
		for i, p := range points {
			tasks = append(tasks, SweepTask{Point: p, Seed: int64(100*i + 1)})
		}
		for _, workers := range []int{1, 4} {
			got, err := RunSweepTasks(tc.levels, tc.tlbs, tasks, tc.passes, workers)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", tc.name, workers, err)
			}
			for i, task := range tasks {
				want, err := RunSweepPointTLB(tc.levels, tc.tlbs, task.Point, task.Seed, tc.passes)
				if err != nil {
					t.Fatal(err)
				}
				sameResult(t, tc.name+"/"+task.Point.Name(), got[i], want)
			}
		}
	}
}

// TestRunSweepTasksForcedSharding drops the sharding threshold to 1 so even
// the tiny sweeps split into residue-class chunks, then re-proves equality —
// the serial-vs-chunked traversal check at cachesim level.
func TestRunSweepTasksForcedSharding(t *testing.T) {
	defer func(old int) { planShardMin = old; resetPlanCache() }(planShardMin)
	planShardMin = 1
	resetPlanCache()
	tlbs := []TLBConfig{
		{Name: "DTLB", Entries: 8, Ways: 2, PageBits: 8},
		{Name: "STLB", Entries: 32, Ways: 4, PageBits: 8},
	}
	points := BuildSweep(TinyConfig(), []int{64, 128})
	var tasks []SweepTask
	for i, p := range points {
		tasks = append(tasks, SweepTask{Point: p, Seed: int64(i) - 3})
	}
	for _, workers := range []int{1, 3} {
		got, err := RunSweepTasks(TinyConfig(), tlbs, tasks, 2, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, task := range tasks {
			want, err := RunSweepPointTLB(TinyConfig(), tlbs, task.Point, task.Seed, 2)
			if err != nil {
				t.Fatal(err)
			}
			sameResult(t, "sharded/"+task.Point.Name(), got[i], want)
		}
	}
}

// TestRunSweepTasksSPRMemPoint proves the fully-arithmetic cache side and
// the sharded TLB side on real SPR-like geometry, including a Mem-region
// point whose cache hierarchy is provably all-miss.
func TestRunSweepTasksSPRMemPoint(t *testing.T) {
	levels, tlbs := SPRLikeConfig(), SPRLikeTLBConfig()
	tasks := []SweepTask{
		{Point: SweepPoint{Region: RegionL1, StrideBytes: 64, Elements: 179}, Seed: 11},
		{Point: SweepPoint{Region: RegionL2, StrideBytes: 128, Elements: 1433}, Seed: 12},
		{Point: SweepPoint{Region: RegionL3, StrideBytes: 64, Elements: 22937}, Seed: 13},
		{Point: SweepPoint{Region: RegionMem, StrideBytes: 128, Elements: 131072}, Seed: 14},
	}
	got, err := RunSweepTasks(levels, tlbs, tasks, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, task := range tasks {
		want, err := RunSweepPointTLB(levels, tlbs, task.Point, task.Seed, 1)
		if err != nil {
			t.Fatal(err)
		}
		sameResult(t, task.Point.Name(), got[i], want)
	}
}

// TestSkipLevels pins the all-miss analysis on the SPR geometry: Mem points
// skip the whole hierarchy, L3 points skip L1+L2, and sub-line strides skip
// nothing.
func TestSkipLevels(t *testing.T) {
	levels := SPRLikeConfig()
	cases := []struct {
		cfg  ChaseConfig
		want int
	}{
		{ChaseConfig{Elements: 179, StrideBytes: 64}, 0},
		{ChaseConfig{Elements: 2867, StrideBytes: 64}, 1},
		{ChaseConfig{Elements: 22937, StrideBytes: 64}, 2},
		{ChaseConfig{Elements: 262144, StrideBytes: 64}, 3},
		{ChaseConfig{Elements: 131072, StrideBytes: 128}, 3},
		{ChaseConfig{Elements: 262144, StrideBytes: 32}, 0}, // sub-line stride
	}
	for _, c := range cases {
		if got := skipLevels(levels, c.cfg, 6); got != c.want {
			t.Errorf("skipLevels(n=%d stride=%d) = %d, want %d", c.cfg.Elements, c.cfg.StrideBytes, got, c.want)
		}
	}
}

// TestPlanCacheEviction shrinks the budget so plans evict, and checks both
// that the cache honors the bound and that evicted plans rebuild correctly.
func TestPlanCacheEviction(t *testing.T) {
	defer func(old int) { PlanCacheBudget = old; resetPlanCache() }(PlanCacheBudget)
	resetPlanCache()
	PlanCacheBudget = 1 << 10
	levels := TinyConfig()
	var first *ChaseResult
	for round := 0; round < 3; round++ {
		for seed := int64(0); seed < 8; seed++ {
			tasks := []SweepTask{{Point: SweepPoint{Region: RegionL2, StrideBytes: 64, Elements: 40}, Seed: seed}}
			got, err := RunSweepTasks(levels, nil, tasks, 1, 1)
			if err != nil {
				t.Fatal(err)
			}
			if seed == 0 && round == 0 {
				first = got[0]
			} else if seed == 0 {
				sameResult(t, "rebuilt", got[0], first)
			}
		}
	}
	planCache.Lock()
	defer planCache.Unlock()
	if planCache.bytes > PlanCacheBudget+1024 {
		t.Errorf("plan cache holds %d bytes, budget %d", planCache.bytes, PlanCacheBudget)
	}
	if len(planCache.entries) != len(planCache.order) {
		t.Errorf("cache bookkeeping diverged: %d entries, %d order", len(planCache.entries), len(planCache.order))
	}
}

// TestReplayMatchesAccess drives the fused replay kernels (and the generic
// dispatcher path) against per-access access() on a twin engine, across
// 1-, 2- and 3-level geometries, pow2 and non-pow2 set counts, and both
// backInval modes. Counter totals and full tag/stamp state must agree after
// every traversal, including across an O(1) reset.
func TestReplayMatchesAccess(t *testing.T) {
	geoms := [][]LevelConfig{
		{{Size: 1 << 10, Ways: 2, LineSize: 64}},
		{{Size: 1 << 10, Ways: 2, LineSize: 64}, {Size: 1 << 12, Ways: 4, LineSize: 64}},
		{{Size: 1 << 10, Ways: 2, LineSize: 64}, {Size: 1 << 12, Ways: 4, LineSize: 64}, {Size: 1 << 14, Ways: 4, LineSize: 64}},
		// The DTLB+STLB way shape: exercises the unrolled replay2w48 kernel.
		{{Size: 1 << 12, Ways: 4, LineSize: 64}, {Size: 1 << 13, Ways: 8, LineSize: 64}},
		oddGeometry(),
		oddGeometry()[:2],
		oddGeometry()[:1],
	}
	rng := rand.New(rand.NewSource(99))
	for gi, cfgs := range geoms {
		for _, backInval := range []bool{true, false} {
			fast := newFastCacheSim(cfgs, 6)
			ref := newFastCacheSim(cfgs, 6)
			fast.backInval = backInval
			ref.backInval = backInval
			for round := 0; round < 3; round++ {
				keys := make([]uint32, 4096)
				for i := range keys {
					// Small key range forces heavy set conflicts, evictions,
					// and (under backInval) cascade invalidations.
					keys[i] = uint32(rng.Intn(700))
				}
				fast.replay(keys)
				for _, k := range keys {
					ref.access(uint64(k))
				}
				if fast.clock != ref.clock || fast.bottom != ref.bottom || fast.accesses != ref.accesses {
					t.Fatalf("geom %d backInval=%v round %d: clocks/bottom/accesses diverged", gi, backInval, round)
				}
				for li := range fast.levels {
					fl, rl := &fast.levels[li], &ref.levels[li]
					if fl.hits != rl.hits || fl.misses != rl.misses {
						t.Fatalf("geom %d backInval=%v round %d level %d: counters %d/%d != %d/%d",
							gi, backInval, round, li, fl.hits, fl.misses, rl.hits, rl.misses)
					}
					for s := range fl.tags {
						fLive, rLive := fl.stamps[s] >= fast.floor, rl.stamps[s] >= ref.floor
						if fLive != rLive || (fLive && (fl.tags[s] != rl.tags[s] || fl.stamps[s] != rl.stamps[s])) {
							t.Fatalf("geom %d backInval=%v round %d level %d slot %d: state diverged", gi, backInval, round, li, s)
						}
					}
				}
				fast.resetState()
				ref.resetState()
			}
		}
	}
}

// TestAllSetsOverflowAnalytic pins the closed-form overflow predicate for
// line-aligned strides against the O(n) per-set count.
func TestAllSetsOverflowAnalytic(t *testing.T) {
	countRef := func(lc LevelConfig, cfg ChaseConfig, lineShift uint) bool {
		counts := make([]int32, lc.Sets())
		nsets := uint64(lc.Sets())
		for i := 0; i < cfg.Elements; i++ {
			line := (cfg.Base + uint64(i)*uint64(cfg.StrideBytes)) >> lineShift
			counts[line%nsets]++
		}
		for _, c := range counts {
			if c != 0 && int(c) <= lc.Ways {
				return false
			}
		}
		return true
	}
	levels := []LevelConfig{
		{Size: 1 << 12, Ways: 2, LineSize: 64},        // 32 sets
		{Size: 1 << 14, Ways: 8, LineSize: 64},        // 32 sets, deep
		{Size: 3 * 64 * 4 * 5, Ways: 4, LineSize: 64}, // 15 sets, non-pow2
	}
	for _, lc := range levels {
		for _, stride := range []int{64, 128, 192, 256, 64 * 32, 64 * 15} {
			for _, n := range []int{1, 7, 31, 32, 33, 64, 100, 1000, 5000} {
				for _, base := range []uint64{0, 64, 4096 + 192} {
					cfg := ChaseConfig{Elements: n, StrideBytes: stride, Base: base}
					got := allSetsOverflow(lc, cfg, 6)
					want := countRef(lc, cfg, 6)
					if got != want {
						t.Fatalf("sets=%d ways=%d stride=%d n=%d base=%d: analytic %v != counted %v",
							lc.Sets(), lc.Ways, stride, n, base, got, want)
					}
				}
			}
		}
	}
}

// BenchmarkReplay2MissStream pins the dominant collection cost: the
// DTLB+STLB kernel on a miss-heavy Mem-region VPN stream.
func BenchmarkReplay2MissStream(b *testing.B) {
	sim := newFastTLBSim(SPRLikeTLBConfig())
	keys := make([]uint32, 1<<20)
	rng := rand.New(rand.NewSource(1))
	for i := range keys {
		keys[i] = uint32(rng.Intn(8192))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.replay(keys)
	}
}
