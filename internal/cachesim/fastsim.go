package cachesim

// fastsim.go is the allocation-conscious chase engine behind the optimized
// sweep runner (fastrun.go): flat tag/stamp storage replaces the reference
// simulator's per-set slices, true-LRU order is carried by monotonically
// increasing access stamps instead of slice shuffles, and the whole state
// resets in O(1) by raising a liveness floor — which is what lets a worker
// pool recycle one engine across thousands of residue-class chunks without
// re-zeroing megabytes of arrays. Semantics are bit-identical to
// Hierarchy.Access / TLBHierarchy.Translate; the equivalence property tests
// in fast_test.go drive both engines access-by-access and compare.

// fastLevel is one set-associative level in flat layout: slot j of set s
// lives at index s*ways+j of tags and stamps. A slot is live iff its stamp
// is >= the owning engine's floor, so stale entries from earlier chases need
// no erasing. mask strength-reduces the set modulo when nsets is a power of
// two (every shipped geometry); the modulo fallback keeps odd test
// geometries exact.
type fastLevel struct {
	ways   uint64
	nsets  uint64
	mask   uint64 // nsets-1 when nsets is a power of two, else 0
	tags   []uint64
	stamps []uint64
	hits   uint64
	misses uint64
}

func newFastLevel(nsets, ways int) fastLevel {
	l := fastLevel{
		ways:   uint64(ways),
		nsets:  uint64(nsets),
		tags:   make([]uint64, nsets*ways),
		stamps: make([]uint64, nsets*ways),
	}
	if n := uint64(nsets); n&(n-1) == 0 {
		l.mask = n - 1
	}
	return l
}

// setBase returns the first slot index of the set holding key.
func (l *fastLevel) setBase(key uint64) uint64 {
	if l.mask != 0 {
		return (key & l.mask) * l.ways
	}
	return (key % l.nsets) * l.ways
}

// probe returns the slot index of a live entry for key, or -1. Only one live
// copy of a key can exist per level (fill is guarded by a failed probe), so
// the first live match is the only one.
func (l *fastLevel) probe(key, floor uint64) int {
	base := l.setBase(key)
	tags := l.tags[base : base+l.ways]
	stamps := l.stamps[base : base+l.ways]
	for j := range tags {
		if tags[j] == key && stamps[j] >= floor {
			return int(base) + j
		}
	}
	return -1
}

// fill inserts key at MRU (the fresh stamp), replacing the least-recently
// used slot. Stale slots carry stamps below the floor, so they are always
// preferred over live lines — exactly the reference's fill-empty-first —
// and among live lines the minimum stamp is the LRU line. It reports the
// replaced tag and whether it was live (a real eviction in the reference's
// sense; overwriting an empty or stale slot evicts nothing).
func (l *fastLevel) fill(key, stamp, floor uint64) (victim uint64, evicted bool) {
	base := l.setBase(key)
	vi, vs := base, l.stamps[base]
	for j := base + 1; j < base+l.ways; j++ {
		if l.stamps[j] < vs {
			vi, vs = j, l.stamps[j]
		}
	}
	victim, evicted = l.tags[vi], vs >= floor
	l.tags[vi] = key
	l.stamps[vi] = stamp
	return victim, evicted
}

// invalidate removes a live entry for key if present (stamps it dead).
func (l *fastLevel) invalidate(key, floor uint64) {
	base := l.setBase(key)
	tags := l.tags[base : base+l.ways]
	stamps := l.stamps[base : base+l.ways]
	for j := range tags {
		if tags[j] == key && stamps[j] >= floor {
			stamps[j] = 0
			return
		}
	}
}

// fastSim simulates a multi-level true-LRU hierarchy: the cache hierarchy
// when backInval is set (inclusive — a live eviction from the last level
// back-invalidates the levels above it), the TLB hierarchy otherwise (fills
// propagate, evictions don't cascade). bottom counts accesses that missed
// every level: memory accesses for caches, page walks for TLBs.
type fastSim struct {
	levels    []fastLevel
	shift     uint // line shift (caches) or page bits (TLBs)
	backInval bool
	clock     uint64
	floor     uint64
	bottom    uint64
	accesses  uint64
}

// newFastCacheSim builds the engine for the cache levels cfgs (which may be
// a tail of the full hierarchy when upper levels are provably all-miss; see
// plan.go). cfgs must already be validated.
func newFastCacheSim(cfgs []LevelConfig, lineShift uint) *fastSim {
	s := &fastSim{shift: lineShift, backInval: true}
	for _, cfg := range cfgs {
		s.levels = append(s.levels, newFastLevel(cfg.Sets(), cfg.Ways))
	}
	s.resetState()
	return s
}

// newFastTLBSim builds the engine for a validated TLB hierarchy.
func newFastTLBSim(cfgs []TLBConfig) *fastSim {
	s := &fastSim{shift: cfgs[0].PageBits}
	for _, cfg := range cfgs {
		s.levels = append(s.levels, newFastLevel(cfg.Sets(), cfg.Ways))
	}
	s.resetState()
	return s
}

// access performs one demand access of the already-shifted key (line number
// or VPN) and returns the level index that served it, or len(levels) for
// the bottom (memory / page walk). It mirrors Hierarchy.Access and
// TLBHierarchy.Translate line for line.
func (s *fastSim) access(key uint64) int {
	s.accesses++
	s.clock++
	stamp := s.clock
	nl := len(s.levels)
	hit := nl
	for i := 0; i < nl; i++ {
		l := &s.levels[i]
		if slot := l.probe(key, s.floor); slot >= 0 {
			l.stamps[slot] = stamp
			l.hits++
			hit = i
			break
		}
		l.misses++
	}
	if hit == nl {
		s.bottom++
	}
	for i := hit - 1; i >= 0; i-- {
		victim, evicted := s.levels[i].fill(key, stamp, s.floor)
		if evicted && s.backInval && i == nl-1 {
			for j := 0; j < i; j++ {
				s.levels[j].invalidate(victim, s.floor)
			}
		}
	}
	return hit
}

// replay performs one traversal over a stream of already-shifted keys,
// dispatching to a fused kernel when the geometry allows (one or two levels,
// power-of-two set counts, ways small enough for the victim encoding — every
// shipped geometry and every post-skip tail of one). The kernels replicate
// access exactly — same probe order, same victim tie-break, same stamp
// values — they only collapse the per-access function calls into one loop
// with the level state held in locals. The dispatcher and both kernels are
// pinned to access by TestReplayMatchesAccess across geometries,
// pow2/non-pow2 set counts, and both backInval modes.
func (s *fastSim) replay(keys []uint32) {
	switch {
	case len(s.levels) == 1 && s.levels[0].kernelable():
		s.replay1(keys)
	case len(s.levels) == 2 && s.levels[0].kernelable() && s.levels[1].kernelable():
		if s.levels[0].ways == 4 && s.levels[1].ways == 8 {
			s.replay2w48(keys)
		} else {
			s.replay2(keys)
		}
	default:
		for _, key := range keys {
			s.access(uint64(key))
		}
	}
}

// kernelable reports whether the level fits the fused kernels' fast shape:
// mask-indexable sets and ways within the victim encoding.
func (l *fastLevel) kernelable() bool {
	return l.mask != 0 && l.ways <= victimMask
}

// The kernels track the fill victim branchlessly: each slot's candidacy is
// encoded as stamp<<victimShift | slot and a running minimum selects the
// victim with conditional moves instead of data-dependent branches (the
// victim scan's compare branch is a coin flip on miss-heavy streams and
// mispredicts constantly when taken literally). Stamps of live slots are
// unique clocks, so the encoding preserves fill's exact tie-break: the
// minimum stamp wins, and among equal (stale) stamps the lowest slot —
// fill's first-in-scan-order choice — wins via the OR'd index. ways above
// victimMask (never shipped; ways are 2..16) take the generic loop.
//
// Both kernels count only hits in the loop; misses fall out afterwards
// (every access probes level 0; level 1 is probed exactly by level-0 misses;
// the bottom is reached exactly by last-level misses), which keeps the
// loop-carried state small enough to live in registers.
const (
	victimShift = 6
	victimMask  = 1<<victimShift - 1
)

// victimMin is a branchless unsigned min (the compiler declines to emit
// conditional moves for min-with-a-load, so the select is spelled in
// arithmetic). Valid for operands below 2^63 — encoded victims are
// clock<<6, far below.
func victimMin(e, v uint64) uint64 {
	d := uint64(int64(v-e) >> 63) // all-ones iff v < e
	return e ^ (d & (e ^ v))
}

// replay1 is the single-level kernel: the fill victim (first minimum-stamp
// slot in scan order — stale-first, then LRU) is computed during the probe
// scan, so a miss costs one pass over the set instead of two. With one level
// the back-invalidation cascade has no upper levels to touch, so backInval
// needs no handling here.
func (s *fastSim) replay1(keys []uint32) {
	l := &s.levels[0]
	ways, mask := l.ways, l.mask
	tags, stamps := l.tags, l.stamps
	floor, clock := s.floor, s.clock
	var hits uint64
outer:
	for _, k := range keys {
		key := uint64(k)
		sb := (key & mask) * ways
		clock++
		t := tags[sb : sb+ways]
		st := stamps[sb : sb+ways]
		e := st[0] << victimShift
		for j := range t {
			if t[j] == key && st[j] >= floor {
				st[j] = clock
				hits++
				continue outer
			}
			e = victimMin(e, st[j]<<victimShift|uint64(j))
		}
		vi := e & victimMask
		t[vi] = key
		st[vi] = clock
	}
	misses := uint64(len(keys)) - hits
	l.hits += hits
	l.misses += misses
	s.bottom += misses
	s.accesses += uint64(len(keys))
	s.clock = clock
}

// replay2 is the two-level kernel (the shipped DTLB+STLB shape, and cache
// tails with one provably-all-miss level skipped). Probe and victim scans
// fuse per level; when a last-level eviction back-invalidates under
// backInval, the level-0 victim is rescanned because the invalidation may
// have freed a slot in the very set being filled — exactly the state the
// reference sees when it runs fill after the cascade.
func (s *fastSim) replay2(keys []uint32) {
	l0, l1 := &s.levels[0], &s.levels[1]
	ways0, mask0 := l0.ways, l0.mask
	ways1, mask1 := l1.ways, l1.mask
	tags0, stamps0 := l0.tags, l0.stamps
	tags1, stamps1 := l1.tags, l1.stamps
	floor, clock := s.floor, s.clock
	backInval := s.backInval
	var hits0, hits1, bottom uint64
outer:
	for _, k := range keys {
		key := uint64(k)
		clock++
		sb0 := (key & mask0) * ways0
		t0 := tags0[sb0 : sb0+ways0]
		s0 := stamps0[sb0 : sb0+ways0]
		e0 := s0[0] << victimShift
		for j := range t0 {
			if t0[j] == key && s0[j] >= floor {
				s0[j] = clock
				hits0++
				continue outer
			}
			e0 = victimMin(e0, s0[j]<<victimShift|uint64(j))
		}
		sb1 := (key & mask1) * ways1
		t1 := tags1[sb1 : sb1+ways1]
		s1 := stamps1[sb1 : sb1+ways1]
		e1 := s1[0] << victimShift
		hit1 := -1
		for j := range t1 {
			if t1[j] == key && s1[j] >= floor {
				hit1 = j
				break
			}
			e1 = victimMin(e1, s1[j]<<victimShift|uint64(j))
		}
		if hit1 >= 0 {
			s1[hit1] = clock
			hits1++
		} else {
			bottom++
			v1 := e1 & victimMask
			victim, evicted := t1[v1], e1>>victimShift >= floor
			t1[v1] = key
			s1[v1] = clock
			if evicted && backInval {
				l0.invalidate(victim, floor)
				// The cascade may have staled a slot in key's own level-0
				// set; redo the victim scan over the updated stamps.
				e0 = s0[0] << victimShift
				for j := 1; j < len(s0); j++ {
					e0 = victimMin(e0, s0[j]<<victimShift|uint64(j))
				}
			}
		}
		v0 := e0 & victimMask
		t0[v0] = key
		s0[v0] = clock
	}
	n := uint64(len(keys))
	misses0 := n - hits0
	l0.hits += hits0
	l0.misses += misses0
	l1.hits += hits1
	l1.misses += misses0 - hits1
	s.bottom += bottom
	s.accesses += n
	s.clock = clock
}

// replay2w48 is replay2 specialized for 4-way level 0 over 8-way level 1 —
// the shipped DTLB+STLB geometry, which carries ~90% of a DCache collection's
// simulated accesses. Unrolling lets the victim minimum reduce as a tree
// (depth 2 and 3) instead of a serial chain (length 4 and 8): victimMin's
// arithmetic select has multi-cycle latency, and on the dominant miss path
// the chained version's critical path is exactly that chain. min over the
// same stamp<<shift|slot candidates is associative, so the tree picks the
// identical victim, tie-breaks included.
func (s *fastSim) replay2w48(keys []uint32) {
	l0, l1 := &s.levels[0], &s.levels[1]
	mask0, mask1 := l0.mask, l1.mask
	tags0, stamps0 := l0.tags, l0.stamps
	tags1, stamps1 := l1.tags, l1.stamps
	floor, clock := s.floor, s.clock
	backInval := s.backInval
	var hits0, hits1, bottom uint64
	for _, k := range keys {
		key := uint64(k)
		clock++
		b0 := (key & mask0) * 4
		t0 := tags0[b0 : b0+4 : b0+4]
		s0 := stamps0[b0 : b0+4 : b0+4]
		if t0[0] == key && s0[0] >= floor {
			s0[0] = clock
			hits0++
			continue
		}
		if t0[1] == key && s0[1] >= floor {
			s0[1] = clock
			hits0++
			continue
		}
		if t0[2] == key && s0[2] >= floor {
			s0[2] = clock
			hits0++
			continue
		}
		if t0[3] == key && s0[3] >= floor {
			s0[3] = clock
			hits0++
			continue
		}
		e0 := victimMin(victimMin(s0[0]<<victimShift, s0[1]<<victimShift|1),
			victimMin(s0[2]<<victimShift|2, s0[3]<<victimShift|3))
		b1 := (key & mask1) * 8
		t1 := tags1[b1 : b1+8 : b1+8]
		s1 := stamps1[b1 : b1+8 : b1+8]
		hit1 := -1
		switch {
		case t1[0] == key && s1[0] >= floor:
			hit1 = 0
		case t1[1] == key && s1[1] >= floor:
			hit1 = 1
		case t1[2] == key && s1[2] >= floor:
			hit1 = 2
		case t1[3] == key && s1[3] >= floor:
			hit1 = 3
		case t1[4] == key && s1[4] >= floor:
			hit1 = 4
		case t1[5] == key && s1[5] >= floor:
			hit1 = 5
		case t1[6] == key && s1[6] >= floor:
			hit1 = 6
		case t1[7] == key && s1[7] >= floor:
			hit1 = 7
		}
		if hit1 >= 0 {
			s1[hit1] = clock
			hits1++
		} else {
			bottom++
			e1 := victimMin(
				victimMin(victimMin(s1[0]<<victimShift, s1[1]<<victimShift|1),
					victimMin(s1[2]<<victimShift|2, s1[3]<<victimShift|3)),
				victimMin(victimMin(s1[4]<<victimShift|4, s1[5]<<victimShift|5),
					victimMin(s1[6]<<victimShift|6, s1[7]<<victimShift|7)))
			v1 := e1 & victimMask
			victim, evicted := t1[v1], e1>>victimShift >= floor
			t1[v1] = key
			s1[v1] = clock
			if evicted && backInval {
				l0.invalidate(victim, floor)
				// The cascade may have staled a slot in key's own level-0
				// set; redo the victim scan over the updated stamps.
				e0 = victimMin(victimMin(s0[0]<<victimShift, s0[1]<<victimShift|1),
					victimMin(s0[2]<<victimShift|2, s0[3]<<victimShift|3))
			}
		}
		v0 := e0 & victimMask
		t0[v0] = key
		s0[v0] = clock
	}
	n := uint64(len(keys))
	misses0 := n - hits0
	l0.hits += hits0
	l0.misses += misses0
	l1.hits += hits1
	l1.misses += misses0 - hits1
	s.bottom += bottom
	s.accesses += n
	s.clock = clock
}

// resetCounters zeroes hit/miss/bottom/access counters, keeping contents —
// the warmup-to-measured transition.
func (s *fastSim) resetCounters() {
	for i := range s.levels {
		s.levels[i].hits, s.levels[i].misses = 0, 0
	}
	s.bottom, s.accesses = 0, 0
}

// resetState empties every level in O(1): raising the floor above every
// stamp issued so far marks all slots stale. Counters reset too. A fresh
// engine and a reset engine are indistinguishable.
func (s *fastSim) resetState() {
	s.floor = s.clock + 1
	s.resetCounters()
}
