package cachesim

import "testing"

func TestSequentialScanIsPrefetched(t *testing.T) {
	// A sequential scan over a buffer much larger than L1 would miss every
	// access without prefetching; a next-line prefetcher hides most misses.
	cfgs := TinyConfig()
	n := 64 // 4x the tiny L1 (16 lines)

	plain, err := NewPrefetchingHierarchy(cfgs, 0)
	if err != nil {
		t.Fatal(err)
	}
	noPf := plain.RunSequentialScan(0, n, 2)
	if noPf.MissRate[0] != 1 {
		t.Fatalf("unprefetched thrashing scan should miss L1 every time, got %v", noPf.MissRate[0])
	}

	pf, err := NewPrefetchingHierarchy(cfgs, 2)
	if err != nil {
		t.Fatal(err)
	}
	with := pf.RunSequentialScan(0, n, 2)
	if with.MissRate[0] >= 0.5 {
		t.Fatalf("prefetcher should hide most sequential misses, miss rate %v", with.MissRate[0])
	}
	if pf.Prefetcher.Issued == 0 {
		t.Fatalf("prefetcher never fired")
	}
}

func TestRandomChaseDefeatsPrefetcher(t *testing.T) {
	// The CAT design point: on a random single-cycle pointer chase the
	// prefetcher fetches useless lines, and demand miss rates still reflect
	// residency — thrash stays ~100% when the buffer exceeds L1.
	cfgs := TinyConfig()
	cfg := ChaseConfig{Elements: 64, StrideBytes: 64, Seed: 5}

	pf, err := NewPrefetchingHierarchy(cfgs, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := pf.RunChase(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	// At this small scale a prefetched line occasionally survives until the
	// chase reaches it, so the miss rate is not exactly 1 — but it must
	// stay high, and far above what the same prefetcher achieves on a
	// sequential scan of the same footprint.
	if res.MissRate[0] < 0.7 {
		t.Fatalf("random chase should defeat the prefetcher, L1 miss rate %v", res.MissRate[0])
	}
	seqPf, err := NewPrefetchingHierarchy(cfgs, 2)
	if err != nil {
		t.Fatal(err)
	}
	seq := seqPf.RunSequentialScan(0, cfg.Elements, 2)
	if res.MissRate[0] <= 2*seq.MissRate[0] {
		t.Fatalf("chase miss rate %v should far exceed prefetched sequential %v",
			res.MissRate[0], seq.MissRate[0])
	}
}

func TestPrefetchFillsDoNotCountAsDemand(t *testing.T) {
	cfgs := TinyConfig()
	pf, err := NewPrefetchingHierarchy(cfgs, 4)
	if err != nil {
		t.Fatal(err)
	}
	pf.Access(0) // demand miss + 4 prefetches
	if pf.Accesses != 1 {
		t.Fatalf("demand access count = %d want 1", pf.Accesses)
	}
	hits, misses := pf.LevelStats(0)
	if hits != 0 || misses != 1 {
		t.Fatalf("demand L1 stats = %d/%d want 0/1", hits, misses)
	}
	// The prefetched next line now hits without a demand miss.
	if lvl := pf.Access(64); lvl != 0 {
		t.Fatalf("prefetched line should hit L1, got level %d", lvl)
	}
}

func TestPrefetcherDegreeZeroIsPlain(t *testing.T) {
	cfgs := TinyConfig()
	pf, err := NewPrefetchingHierarchy(cfgs, 0)
	if err != nil {
		t.Fatal(err)
	}
	pf.Access(0)
	pf.Access(64)
	if pf.Prefetcher.Issued != 0 {
		t.Fatalf("degree-0 prefetcher issued fills")
	}
	if lvl := pf.Access(64 * 2); lvl == 0 {
		t.Fatalf("next line should not be resident without prefetching")
	}
}

func TestPrefetchingHierarchyChaseMatchesPlainOnFittingBuffer(t *testing.T) {
	// When the chase fits L1 entirely, prefetching changes nothing.
	cfgs := TinyConfig()
	cfg := ChaseConfig{Elements: 8, StrideBytes: 64, Seed: 2}
	pf, err := NewPrefetchingHierarchy(cfgs, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := pf.RunChase(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.HitRate[0] != 1 {
		t.Fatalf("fitting chase should hit L1 always, got %v", res.HitRate[0])
	}
}
