// Package cachesim simulates a multi-level, set-associative, inclusive data
// cache hierarchy with true-LRU replacement — the substrate underneath the
// CAT data-cache benchmark.
//
// The simulator tracks demand hits and demand misses per level, which are the
// ideal quantities behind the paper's cache expectation basis
// (L1DM, L1DH, L2DH, L3DH). The CAT benchmark drives it with pointer chases
// whose footprint is positioned well inside one level of the hierarchy, so
// that in the post-warmup steady state every access resolves at exactly that
// level: a cyclic LRU reference stream either fits a level (hit rate 1) or
// thrashes it completely (hit rate 0).
package cachesim

import "fmt"

// LevelConfig describes one cache level.
type LevelConfig struct {
	Name     string
	Size     int // capacity in bytes
	Ways     int // associativity
	LineSize int // must be equal across levels
}

// Lines returns the number of cache lines the level holds.
func (c LevelConfig) Lines() int { return c.Size / c.LineSize }

// Sets returns the number of sets.
func (c LevelConfig) Sets() int { return c.Lines() / c.Ways }

// Validate checks the configuration for internal consistency.
func (c LevelConfig) Validate() error {
	if c.Size <= 0 || c.Ways <= 0 || c.LineSize <= 0 {
		return fmt.Errorf("cachesim: level %q has non-positive geometry", c.Name)
	}
	if c.Size%(c.Ways*c.LineSize) != 0 {
		return fmt.Errorf("cachesim: level %q size %d not divisible by ways*line", c.Name, c.Size)
	}
	return nil
}

// level is one cache level at runtime. Each set is an MRU-first slice of
// line tags (true LRU).
type level struct {
	cfg    LevelConfig
	nsets  uint64
	sets   [][]uint64
	Hits   uint64 // demand hits
	Misses uint64 // demand misses
}

func newLevel(cfg LevelConfig) *level {
	n := cfg.Sets()
	sets := make([][]uint64, n)
	for i := range sets {
		sets[i] = make([]uint64, 0, cfg.Ways)
	}
	return &level{cfg: cfg, nsets: uint64(n), sets: sets}
}

// lookup probes the level for a line and refreshes LRU order on a hit.
func (l *level) lookup(line uint64) bool {
	set := l.sets[line%l.nsets]
	for i, tag := range set {
		if tag == line {
			// Move to front (MRU).
			copy(set[1:i+1], set[:i])
			set[0] = line
			return true
		}
	}
	return false
}

// insert places a line at MRU, returning the evicted victim if the set was
// full.
func (l *level) insert(line uint64) (victim uint64, evicted bool) {
	idx := line % l.nsets
	set := l.sets[idx]
	if len(set) == l.cfg.Ways {
		victim = set[len(set)-1]
		evicted = true
		copy(set[1:], set[:len(set)-1])
		set[0] = line
		l.sets[idx] = set
		return victim, true
	}
	set = append(set, 0)
	copy(set[1:], set[:len(set)-1])
	set[0] = line
	l.sets[idx] = set
	return 0, false
}

// invalidate removes a line if present.
func (l *level) invalidate(line uint64) {
	idx := line % l.nsets
	set := l.sets[idx]
	for i, tag := range set {
		if tag == line {
			l.sets[idx] = append(set[:i], set[i+1:]...)
			return
		}
	}
}

// Hierarchy is an inclusive multi-level cache backed by memory.
type Hierarchy struct {
	levels    []*level
	lineShift uint
	// MemAccesses counts accesses served by memory (missed every level).
	MemAccesses uint64
	// Accesses counts all demand accesses.
	Accesses uint64
}

// NewHierarchy builds a hierarchy from level configs ordered L1 first.
// All levels must share one line size that is a power of two.
func NewHierarchy(cfgs []LevelConfig) (*Hierarchy, error) {
	if len(cfgs) == 0 {
		return nil, fmt.Errorf("cachesim: no levels")
	}
	line := cfgs[0].LineSize
	if line&(line-1) != 0 || line == 0 {
		return nil, fmt.Errorf("cachesim: line size %d not a power of two", line)
	}
	shift := uint(0)
	for 1<<shift != line {
		shift++
	}
	h := &Hierarchy{lineShift: shift}
	prevLines := 0
	for _, cfg := range cfgs {
		if err := cfg.Validate(); err != nil {
			return nil, err
		}
		if cfg.LineSize != line {
			return nil, fmt.Errorf("cachesim: mixed line sizes %d and %d", line, cfg.LineSize)
		}
		if cfg.Lines() < prevLines {
			return nil, fmt.Errorf("cachesim: level %q smaller than the level above it", cfg.Name)
		}
		prevLines = cfg.Lines()
		h.levels = append(h.levels, newLevel(cfg))
	}
	return h, nil
}

// Access performs one demand load of addr. It returns the 0-based index of
// the level that served it, or len(levels) for memory.
func (h *Hierarchy) Access(addr uint64) int {
	h.Accesses++
	line := addr >> h.lineShift
	hitLevel := len(h.levels)
	for i, l := range h.levels {
		if l.lookup(line) {
			l.Hits++
			hitLevel = i
			break
		}
		l.Misses++
	}
	if hitLevel == len(h.levels) {
		h.MemAccesses++
	}
	// Fill the line into every level above the hit level (inclusive policy).
	for i := hitLevel - 1; i >= 0; i-- {
		victim, evicted := h.levels[i].insert(line)
		if evicted && i == len(h.levels)-1 {
			// Eviction from the last level back-invalidates upper levels to
			// preserve inclusion.
			for j := 0; j < i; j++ {
				h.levels[j].invalidate(victim)
			}
		}
	}
	return hitLevel
}

// LevelStats returns (demand hits, demand misses) for level i.
func (h *Hierarchy) LevelStats(i int) (hits, misses uint64) {
	return h.levels[i].Hits, h.levels[i].Misses
}

// NumLevels returns the number of cache levels.
func (h *Hierarchy) NumLevels() int { return len(h.levels) }

// LevelName returns the configured name of level i.
func (h *Hierarchy) LevelName(i int) string { return h.levels[i].cfg.Name }

// ResetCounters zeroes all hit/miss counters, preserving cache contents.
// The CAT benchmark calls this between the warmup pass and the measured
// passes.
func (h *Hierarchy) ResetCounters() {
	for _, l := range h.levels {
		l.Hits, l.Misses = 0, 0
	}
	h.MemAccesses = 0
	h.Accesses = 0
}

// Contains reports whether the line holding addr is present at level i
// (without touching LRU state or counters). Intended for tests.
func (h *Hierarchy) Contains(i int, addr uint64) bool {
	line := addr >> h.lineShift
	set := h.levels[i].sets[line%h.levels[i].nsets]
	for _, tag := range set {
		if tag == line {
			return true
		}
	}
	return false
}

// SPRLikeConfig returns the default simulated hierarchy: a Sapphire-Rapids-
// flavoured geometry scaled down so full sweeps stay fast while preserving
// the L1 < L2 < L3 capacity ordering the analysis depends on.
func SPRLikeConfig() []LevelConfig {
	return []LevelConfig{
		{Name: "L1", Size: 32 << 10, Ways: 8, LineSize: 64},
		{Name: "L2", Size: 512 << 10, Ways: 8, LineSize: 64},
		{Name: "L3", Size: 4 << 20, Ways: 16, LineSize: 64},
	}
}

// TinyConfig returns a miniature hierarchy for fast unit tests.
func TinyConfig() []LevelConfig {
	return []LevelConfig{
		{Name: "L1", Size: 1 << 10, Ways: 2, LineSize: 64},
		{Name: "L2", Size: 4 << 10, Ways: 4, LineSize: 64},
		{Name: "L3", Size: 16 << 10, Ways: 4, LineSize: 64},
	}
}
