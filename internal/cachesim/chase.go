package cachesim

import "fmt"

// ChaseConfig describes one pointer-chase workload: Elements pointers laid
// out StrideBytes apart, visited in a single random cycle (Sattolo
// permutation) to defeat any stride prefetcher, exactly as the CAT
// data-cache benchmark arranges its buffers.
type ChaseConfig struct {
	Elements    int
	StrideBytes int
	Base        uint64 // base address of the buffer
	Seed        int64  // permutation seed (deterministic chains)
}

// FootprintBytes returns the buffer span in bytes.
func (c ChaseConfig) FootprintBytes() int { return c.Elements * c.StrideBytes }

// Validate checks the chase parameters.
func (c ChaseConfig) Validate() error {
	if c.Elements < 2 {
		return fmt.Errorf("cachesim: chase needs at least 2 elements, got %d", c.Elements)
	}
	if c.StrideBytes <= 0 {
		return fmt.Errorf("cachesim: non-positive stride %d", c.StrideBytes)
	}
	return nil
}

// BuildChain returns the access sequence of one full traversal of the chase:
// a permutation of all element addresses forming a single cycle (Sattolo's
// algorithm — a uniformly random single-cycle permutation, built by
// buildPerm and shared with the planned execution path in plan.go).
func BuildChain(cfg ChaseConfig) ([]uint64, error) {
	next, err := buildPerm(cfg)
	if err != nil {
		return nil, err
	}
	// Walk the cycle starting at element 0, emitting addresses.
	chain := make([]uint64, cfg.Elements)
	cur := int32(0)
	for k := range chain {
		chain[k] = cfg.Base + uint64(cur)*uint64(cfg.StrideBytes)
		cur = next[cur]
	}
	return chain, nil
}

// ChaseResult reports per-access steady-state rates from a measured chase.
type ChaseResult struct {
	Config ChaseConfig
	// Accesses is the number of measured demand loads.
	Accesses uint64
	// HitRate[i] is demand hits at level i per access; MissRate[i] likewise.
	HitRate  []float64
	MissRate []float64
	// MemRate is memory accesses per access.
	MemRate float64
	// TLBMissRate[i] is TLB misses at translation level i per access, and
	// WalkRate is page walks per access; both are zero-length/zero when the
	// chase ran without a TLB model.
	TLBMissRate []float64
	WalkRate    float64
}

// RunChase executes the pointer chase on h: one warmup traversal (uncounted)
// followed by `passes` measured traversals, and returns per-access rates.
func RunChase(h *Hierarchy, cfg ChaseConfig, passes int) (*ChaseResult, error) {
	return RunChaseWithTLB(h, nil, cfg, passes)
}

// RunChaseWithTLB is RunChase with an optional translation hierarchy: every
// demand load first translates its address, so the result additionally
// reports per-level TLB miss rates and the page-walk rate.
func RunChaseWithTLB(h *Hierarchy, tlb *TLBHierarchy, cfg ChaseConfig, passes int) (*ChaseResult, error) {
	chain, err := BuildChain(cfg)
	if err != nil {
		return nil, err
	}
	if passes < 1 {
		return nil, fmt.Errorf("cachesim: passes must be >= 1, got %d", passes)
	}
	access := func(addr uint64) {
		if tlb != nil {
			tlb.Translate(addr)
		}
		h.Access(addr)
	}
	// Warmup traversal primes every level.
	for _, addr := range chain {
		access(addr)
	}
	h.ResetCounters()
	if tlb != nil {
		tlb.ResetCounters()
	}
	for p := 0; p < passes; p++ {
		for _, addr := range chain {
			access(addr)
		}
	}
	res := &ChaseResult{Config: cfg, Accesses: h.Accesses}
	n := float64(h.Accesses)
	for i := 0; i < h.NumLevels(); i++ {
		hits, misses := h.LevelStats(i)
		res.HitRate = append(res.HitRate, float64(hits)/n)
		res.MissRate = append(res.MissRate, float64(misses)/n)
	}
	res.MemRate = float64(h.MemAccesses) / n
	if tlb != nil {
		for i := 0; i < tlb.NumLevels(); i++ {
			_, misses := tlb.LevelStats(i)
			res.TLBMissRate = append(res.TLBMissRate, float64(misses)/n)
		}
		res.WalkRate = float64(tlb.Walks) / n
	}
	return res, nil
}
