package cachesim

import "fmt"

// TLBConfig describes one translation-lookaside-buffer level.
type TLBConfig struct {
	Name    string
	Entries int
	Ways    int
	// PageBits is log2 of the page size (12 for 4 KiB pages).
	PageBits uint
}

// Sets returns the number of TLB sets.
func (c TLBConfig) Sets() int { return c.Entries / c.Ways }

// Validate checks the TLB geometry.
func (c TLBConfig) Validate() error {
	if c.Entries <= 0 || c.Ways <= 0 || c.PageBits == 0 {
		return fmt.Errorf("cachesim: TLB %q has non-positive geometry", c.Name)
	}
	if c.Entries%c.Ways != 0 {
		return fmt.Errorf("cachesim: TLB %q entries %d not divisible by ways %d", c.Name, c.Entries, c.Ways)
	}
	return nil
}

// tlbLevel is one TLB at runtime (set-associative, true LRU over VPNs).
type tlbLevel struct {
	cfg    TLBConfig
	nsets  uint64
	sets   [][]uint64
	Hits   uint64
	Misses uint64
}

func newTLBLevel(cfg TLBConfig) *tlbLevel {
	n := cfg.Sets()
	sets := make([][]uint64, n)
	for i := range sets {
		sets[i] = make([]uint64, 0, cfg.Ways)
	}
	return &tlbLevel{cfg: cfg, nsets: uint64(n), sets: sets}
}

func (l *tlbLevel) lookup(vpn uint64) bool {
	set := l.sets[vpn%l.nsets]
	for i, tag := range set {
		if tag == vpn {
			copy(set[1:i+1], set[:i])
			set[0] = vpn
			return true
		}
	}
	return false
}

func (l *tlbLevel) insert(vpn uint64) {
	idx := vpn % l.nsets
	set := l.sets[idx]
	if len(set) == l.cfg.Ways {
		copy(set[1:], set[:len(set)-1])
		set[0] = vpn
		l.sets[idx] = set
		return
	}
	set = append(set, 0)
	copy(set[1:], set[:len(set)-1])
	set[0] = vpn
	l.sets[idx] = set
}

// TLBHierarchy is a two-level translation hierarchy (L1 DTLB backed by a
// unified STLB) with page walks on full misses.
type TLBHierarchy struct {
	levels   []*tlbLevel
	pageBits uint
	// Walks counts page-table walks (misses in every TLB level).
	Walks uint64
	// Accesses counts translations requested.
	Accesses uint64
}

// NewTLBHierarchy builds a TLB hierarchy; all levels must share a page size.
func NewTLBHierarchy(cfgs []TLBConfig) (*TLBHierarchy, error) {
	if len(cfgs) == 0 {
		return nil, fmt.Errorf("cachesim: no TLB levels")
	}
	h := &TLBHierarchy{pageBits: cfgs[0].PageBits}
	prev := 0
	for _, cfg := range cfgs {
		if err := cfg.Validate(); err != nil {
			return nil, err
		}
		if cfg.PageBits != h.pageBits {
			return nil, fmt.Errorf("cachesim: mixed TLB page sizes")
		}
		if cfg.Entries < prev {
			return nil, fmt.Errorf("cachesim: TLB %q smaller than the level above", cfg.Name)
		}
		prev = cfg.Entries
		h.levels = append(h.levels, newTLBLevel(cfg))
	}
	return h, nil
}

// Translate looks an address up, returning the 0-based level that hit or
// len(levels) for a page walk, and fills the translation into all levels.
func (h *TLBHierarchy) Translate(addr uint64) int {
	h.Accesses++
	vpn := addr >> h.pageBits
	hitLevel := len(h.levels)
	for i, l := range h.levels {
		if l.lookup(vpn) {
			l.Hits++
			hitLevel = i
			break
		}
		l.Misses++
	}
	if hitLevel == len(h.levels) {
		h.Walks++
	}
	for i := hitLevel - 1; i >= 0; i-- {
		h.levels[i].insert(vpn)
	}
	return hitLevel
}

// LevelStats returns (hits, misses) for TLB level i.
func (h *TLBHierarchy) LevelStats(i int) (hits, misses uint64) {
	return h.levels[i].Hits, h.levels[i].Misses
}

// NumLevels returns the number of TLB levels.
func (h *TLBHierarchy) NumLevels() int { return len(h.levels) }

// ResetCounters zeroes hit/miss/walk counters, preserving contents.
func (h *TLBHierarchy) ResetCounters() {
	for _, l := range h.levels {
		l.Hits, l.Misses = 0, 0
	}
	h.Walks = 0
	h.Accesses = 0
}

// Reach returns the address span one TLB level covers, in bytes.
func Reach(cfg TLBConfig) int {
	return cfg.Entries << cfg.PageBits
}

// SPRLikeTLBConfig returns a scaled-down SPR-flavoured TLB: a 64-entry L1
// DTLB backed by a 512-entry STLB over 4 KiB pages — reaches 256 KiB and
// 2 MiB respectively, bracketing the scaled cache hierarchy so the
// data-cache sweep produces distinct TLB regimes per region.
func SPRLikeTLBConfig() []TLBConfig {
	return []TLBConfig{
		{Name: "DTLB", Entries: 64, Ways: 4, PageBits: 12},
		{Name: "STLB", Entries: 512, Ways: 8, PageBits: 12},
	}
}
