package cachesim

import "testing"

func tinyTLB() []TLBConfig {
	return []TLBConfig{
		{Name: "DTLB", Entries: 4, Ways: 2, PageBits: 12},
		{Name: "STLB", Entries: 16, Ways: 4, PageBits: 12},
	}
}

func TestTLBConfigValidation(t *testing.T) {
	good := TLBConfig{Name: "t", Entries: 8, Ways: 2, PageBits: 12}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	if good.Sets() != 4 {
		t.Fatalf("Sets = %d", good.Sets())
	}
	bad := TLBConfig{Name: "b", Entries: 7, Ways: 2, PageBits: 12}
	if err := bad.Validate(); err == nil {
		t.Fatalf("indivisible entries should fail")
	}
	if err := (TLBConfig{Name: "z"}).Validate(); err == nil {
		t.Fatalf("zero geometry should fail")
	}
}

func TestNewTLBHierarchyValidation(t *testing.T) {
	if _, err := NewTLBHierarchy(nil); err == nil {
		t.Fatalf("empty hierarchy should fail")
	}
	mixed := []TLBConfig{
		{Name: "a", Entries: 4, Ways: 2, PageBits: 12},
		{Name: "b", Entries: 8, Ways: 2, PageBits: 21},
	}
	if _, err := NewTLBHierarchy(mixed); err == nil {
		t.Fatalf("mixed page sizes should fail")
	}
	shrinking := []TLBConfig{
		{Name: "a", Entries: 8, Ways: 2, PageBits: 12},
		{Name: "b", Entries: 4, Ways: 2, PageBits: 12},
	}
	if _, err := NewTLBHierarchy(shrinking); err == nil {
		t.Fatalf("shrinking hierarchy should fail")
	}
}

func TestTLBHitAfterFill(t *testing.T) {
	h, err := NewTLBHierarchy(tinyTLB())
	if err != nil {
		t.Fatal(err)
	}
	if lvl := h.Translate(0x5000); lvl != 2 {
		t.Fatalf("cold translation should walk, got level %d", lvl)
	}
	if h.Walks != 1 {
		t.Fatalf("walks = %d", h.Walks)
	}
	if lvl := h.Translate(0x5abc); lvl != 0 { // same page
		t.Fatalf("same-page translation should hit DTLB, got %d", lvl)
	}
}

func TestTLBCapacityEviction(t *testing.T) {
	h, err := NewTLBHierarchy(tinyTLB())
	if err != nil {
		t.Fatal(err)
	}
	// Touch 8 pages: DTLB (4 entries) evicts, STLB (16) holds all.
	for p := uint64(0); p < 8; p++ {
		h.Translate(p << 12)
	}
	h.ResetCounters()
	for p := uint64(0); p < 8; p++ {
		h.Translate(p << 12)
	}
	_, dtlbMiss := h.LevelStats(0)
	_, stlbMiss := h.LevelStats(1)
	if dtlbMiss == 0 {
		t.Fatalf("8 pages must overflow a 4-entry DTLB")
	}
	if stlbMiss != 0 {
		t.Fatalf("8 pages must fit a 16-entry STLB, got %d misses", stlbMiss)
	}
	if h.Walks != 0 {
		t.Fatalf("no walks expected, got %d", h.Walks)
	}
}

func TestTLBReach(t *testing.T) {
	if got := Reach(TLBConfig{Entries: 64, Ways: 4, PageBits: 12}); got != 64*4096 {
		t.Fatalf("Reach = %d", got)
	}
}

func TestChaseWithTLBRegimes(t *testing.T) {
	// Small chase: fits both TLBs -> no misses. Large chase: overflows
	// the STLB -> walks on (almost) every access.
	cfgs := TinyConfig()
	small := ChaseConfig{Elements: 8, StrideBytes: 64, Seed: 3} // one page
	h, _ := NewHierarchy(cfgs)
	tlb, _ := NewTLBHierarchy(tinyTLB())
	res, err := RunChaseWithTLB(h, tlb, small, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.TLBMissRate[0] != 0 || res.WalkRate != 0 {
		t.Fatalf("single-page chase should never miss the TLB: %+v", res)
	}
	// 128 elements at 4096-byte stride: one page each, 128 pages > 16 STLB
	// entries -> steady-state thrash.
	big := ChaseConfig{Elements: 128, StrideBytes: 4096, Seed: 3}
	h2, _ := NewHierarchy([]LevelConfig{
		{Name: "L1", Size: 64 << 10, Ways: 16, LineSize: 64},
		{Name: "L2", Size: 256 << 10, Ways: 16, LineSize: 64},
		{Name: "L3", Size: 1 << 20, Ways: 16, LineSize: 64},
	})
	tlb2, _ := NewTLBHierarchy(tinyTLB())
	res2, err := RunChaseWithTLB(h2, tlb2, big, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res2.WalkRate != 1 {
		t.Fatalf("page-per-element chase should walk every access, rate %v", res2.WalkRate)
	}
}

func TestSweepWithTLBMonotonicRegions(t *testing.T) {
	// Across the sweep, walk rates must be non-trivial only for footprints
	// beyond the STLB reach.
	cfgs := SPRLikeConfig()
	tlbs := SPRLikeTLBConfig()
	reach := Reach(tlbs[1])
	for _, p := range BuildSweep(cfgs, []int{64}) {
		res, err := RunSweepPointTLB(cfgs, tlbs, p, 5, 1)
		if err != nil {
			t.Fatal(err)
		}
		footprint := p.Elements * p.StrideBytes
		if footprint <= reach/2 && res.WalkRate > 0.01 {
			t.Errorf("%s: footprint %d within STLB reach %d but walk rate %v",
				p.Name(), footprint, reach, res.WalkRate)
		}
		if footprint >= 4*reach && res.WalkRate < 0.5 {
			t.Errorf("%s: footprint %d far beyond STLB reach %d but walk rate %v",
				p.Name(), footprint, reach, res.WalkRate)
		}
	}
}
