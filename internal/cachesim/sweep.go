package cachesim

import "fmt"

// Region identifies which level of the hierarchy a sweep point targets.
type Region uint8

const (
	RegionL1 Region = iota
	RegionL2
	RegionL3
	RegionMem
)

// String returns the plot label used in the paper's Figure 3 x-axis.
func (r Region) String() string {
	switch r {
	case RegionL1:
		return "L1"
	case RegionL2:
		return "L2"
	case RegionL3:
		return "L3"
	default:
		return "M"
	}
}

// SweepPoint is one configuration of the CAT data-cache sweep: a pointer
// chain sized to land inside one region, at one stride.
type SweepPoint struct {
	Region      Region
	StrideBytes int
	Elements    int
}

// Name renders e.g. "L2/stride=64B/n=2867".
func (p SweepPoint) Name() string {
	return fmt.Sprintf("%s/stride=%dB/n=%d", p.Region, p.StrideBytes, p.Elements)
}

// effectiveLines returns how many lines of a level a chase at the given
// stride can actually use: strides wider than the line size skip sets,
// halving (etc.) the usable capacity.
func effectiveLines(cfg LevelConfig, stride int) int {
	lines := cfg.Lines()
	if stride > cfg.LineSize {
		lines = lines * cfg.LineSize / stride
	}
	return lines
}

// BuildSweep constructs the CAT data-cache sweep for a hierarchy config:
// for each stride, two points well inside each cache level (at 35% and 70%
// of the level's effective capacity) and two points far beyond the last
// level (4x and 8x). Points whose footprint would not clear the previous
// level are dropped, which can happen for aggressive strides on small test
// hierarchies.
func BuildSweep(cfgs []LevelConfig, strides []int) []SweepPoint {
	var points []SweepPoint
	for _, stride := range strides {
		prevLines := 0
		for li, cfg := range cfgs {
			eff := effectiveLines(cfg, stride)
			for _, frac := range []float64{0.35, 0.70} {
				n := int(frac * float64(eff))
				if n <= 2*prevLines || n < 2 {
					continue // would not thrash the level above
				}
				points = append(points, SweepPoint{
					Region:      Region(li),
					StrideBytes: stride,
					Elements:    n,
				})
			}
			prevLines = eff
		}
		lastEff := effectiveLines(cfgs[len(cfgs)-1], stride)
		for _, mult := range []int{4, 8} {
			points = append(points, SweepPoint{
				Region:      RegionMem,
				StrideBytes: stride,
				Elements:    mult * lastEff,
			})
		}
	}
	return points
}

// RunSweepPoint executes one sweep point on a fresh hierarchy and returns
// its steady-state rates.
func RunSweepPoint(cfgs []LevelConfig, p SweepPoint, seed int64, passes int) (*ChaseResult, error) {
	return RunSweepPointTLB(cfgs, nil, p, seed, passes)
}

// RunSweepPointTLB is RunSweepPoint with an optional TLB hierarchy (pass nil
// tlbCfgs to run without translation modelling).
func RunSweepPointTLB(cfgs []LevelConfig, tlbCfgs []TLBConfig, p SweepPoint, seed int64, passes int) (*ChaseResult, error) {
	h, err := NewHierarchy(cfgs)
	if err != nil {
		return nil, err
	}
	var tlb *TLBHierarchy
	if len(tlbCfgs) > 0 {
		tlb, err = NewTLBHierarchy(tlbCfgs)
		if err != nil {
			return nil, err
		}
	}
	return RunChaseWithTLB(h, tlb, ChaseConfig{
		Elements:    p.Elements,
		StrideBytes: p.StrideBytes,
		Seed:        seed,
	}, passes)
}
