package cachesim

// Prefetcher models a hardware next-N-line prefetcher in front of a level.
// It exists to demonstrate *why* the CAT data-cache benchmark chases
// pointers in a random cycle: a sequential scan would be prefetched and the
// demand hit/miss counters would stop reflecting the buffer's residency
// level, destroying the expectation basis.
type Prefetcher struct {
	// Degree is how many sequential lines are prefetched on each demand
	// miss (0 disables prefetching).
	Degree int
	// Issued counts prefetch fills issued.
	Issued uint64
}

// PrefetchingHierarchy wraps a Hierarchy with a next-line prefetcher that
// observes demand misses and fills subsequent lines into every level.
// Prefetch fills do not touch the demand hit/miss counters — exactly like
// real hardware, where MEM_LOAD_RETIRED events count demand loads only.
type PrefetchingHierarchy struct {
	*Hierarchy
	Prefetcher Prefetcher
}

// NewPrefetchingHierarchy builds a prefetching hierarchy.
func NewPrefetchingHierarchy(cfgs []LevelConfig, degree int) (*PrefetchingHierarchy, error) {
	h, err := NewHierarchy(cfgs)
	if err != nil {
		return nil, err
	}
	return &PrefetchingHierarchy{Hierarchy: h, Prefetcher: Prefetcher{Degree: degree}}, nil
}

// Access performs a demand load and triggers next-line prefetches on miss.
func (p *PrefetchingHierarchy) Access(addr uint64) int {
	lvl := p.Hierarchy.Access(addr)
	if lvl == 0 || p.Prefetcher.Degree == 0 {
		return lvl
	}
	// Demand miss at L1: prefetch the next Degree lines.
	lineSize := uint64(1) << p.lineShift
	for d := 1; d <= p.Prefetcher.Degree; d++ {
		p.prefetchFill(addr + uint64(d)*lineSize)
		p.Prefetcher.Issued++
	}
	return lvl
}

// prefetchFill inserts a line into every level without counting demand
// traffic.
func (p *PrefetchingHierarchy) prefetchFill(addr uint64) {
	line := addr >> p.lineShift
	// Probe without counting; fill missing levels.
	hitLevel := len(p.levels)
	for i, l := range p.levels {
		if l.lookup(line) {
			hitLevel = i
			break
		}
	}
	for i := hitLevel - 1; i >= 0; i-- {
		victim, evicted := p.levels[i].insert(line)
		if evicted && i == len(p.levels)-1 {
			for j := 0; j < i; j++ {
				p.levels[j].invalidate(victim)
			}
		}
	}
}

// RunSequentialScan performs `passes` sequential traversals over a buffer of
// n lines starting at base (one access per line), after one warmup pass,
// returning per-access demand rates. Used to contrast prefetched sequential
// access against the pointer chase.
func (p *PrefetchingHierarchy) RunSequentialScan(base uint64, n, passes int) *ChaseResult {
	lineSize := uint64(1) << p.lineShift
	scan := func() {
		for i := 0; i < n; i++ {
			p.Access(base + uint64(i)*lineSize)
		}
	}
	scan()
	p.ResetCounters()
	for i := 0; i < passes; i++ {
		scan()
	}
	res := &ChaseResult{Accesses: p.Accesses}
	total := float64(p.Accesses)
	for i := 0; i < p.NumLevels(); i++ {
		hits, misses := p.LevelStats(i)
		res.HitRate = append(res.HitRate, float64(hits)/total)
		res.MissRate = append(res.MissRate, float64(misses)/total)
	}
	res.MemRate = float64(p.MemAccesses) / total
	return res
}

// RunChase executes a pointer chase through the prefetching hierarchy
// (warmup traversal, counter reset, measured traversals) and returns
// per-access demand rates — the prefetching counterpart of the package-level
// RunChase.
func (p *PrefetchingHierarchy) RunChase(cfg ChaseConfig, passes int) (*ChaseResult, error) {
	chain, err := BuildChain(cfg)
	if err != nil {
		return nil, err
	}
	for _, a := range chain {
		p.Access(a)
	}
	p.ResetCounters()
	for i := 0; i < passes; i++ {
		for _, a := range chain {
			p.Access(a)
		}
	}
	res := &ChaseResult{Config: cfg, Accesses: p.Accesses}
	total := float64(p.Accesses)
	for i := 0; i < p.NumLevels(); i++ {
		hits, misses := p.LevelStats(i)
		res.HitRate = append(res.HitRate, float64(hits)/total)
		res.MissRate = append(res.MissRate, float64(misses)/total)
	}
	res.MemRate = float64(p.MemAccesses) / total
	return res, nil
}
