package cachesim

import (
	"math"
	"testing"
	"testing/quick"
)

func mustHierarchy(t *testing.T, cfgs []LevelConfig) *Hierarchy {
	t.Helper()
	h, err := NewHierarchy(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestLevelConfigGeometry(t *testing.T) {
	c := LevelConfig{Name: "L1", Size: 32 << 10, Ways: 8, LineSize: 64}
	if c.Lines() != 512 || c.Sets() != 64 {
		t.Fatalf("Lines=%d Sets=%d want 512, 64", c.Lines(), c.Sets())
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := LevelConfig{Name: "x", Size: 100, Ways: 3, LineSize: 64}
	if err := bad.Validate(); err == nil {
		t.Fatalf("expected validation error for non-divisible size")
	}
}

func TestNewHierarchyRejectsBadConfigs(t *testing.T) {
	if _, err := NewHierarchy(nil); err == nil {
		t.Fatalf("empty config should fail")
	}
	if _, err := NewHierarchy([]LevelConfig{{Name: "L1", Size: 1 << 10, Ways: 2, LineSize: 48}}); err == nil {
		t.Fatalf("non-power-of-two line should fail")
	}
	if _, err := NewHierarchy([]LevelConfig{
		{Name: "L1", Size: 4 << 10, Ways: 2, LineSize: 64},
		{Name: "L2", Size: 1 << 10, Ways: 2, LineSize: 64},
	}); err == nil {
		t.Fatalf("shrinking hierarchy should fail")
	}
}

func TestAccessHitAfterFill(t *testing.T) {
	h := mustHierarchy(t, TinyConfig())
	if lvl := h.Access(0x1000); lvl != h.NumLevels() {
		t.Fatalf("cold access should miss to memory, got level %d", lvl)
	}
	if lvl := h.Access(0x1000); lvl != 0 {
		t.Fatalf("second access should hit L1, got level %d", lvl)
	}
	if lvl := h.Access(0x1004); lvl != 0 {
		t.Fatalf("same-line access should hit L1, got level %d", lvl)
	}
}

func TestLRUEviction(t *testing.T) {
	// Tiny L1: 2 ways, 8 sets. Three lines mapping to one set evict LRU.
	h := mustHierarchy(t, TinyConfig())
	setsL1 := uint64(TinyConfig()[0].Sets())
	lineSz := uint64(64)
	a := uint64(0)
	b := a + setsL1*lineSz   // same set as a
	c := a + 2*setsL1*lineSz // same set again
	h.Access(a)
	h.Access(b)
	h.Access(c) // evicts a from L1
	if h.Contains(0, a) {
		t.Fatalf("LRU victim should have been evicted from L1")
	}
	if !h.Contains(0, b) || !h.Contains(0, c) {
		t.Fatalf("recently used lines must stay resident")
	}
	// a still lives in L2 (inclusive), so it hits there.
	if lvl := h.Access(a); lvl != 1 {
		t.Fatalf("evicted line should hit L2, got level %d", lvl)
	}
}

func TestInclusiveBackInvalidation(t *testing.T) {
	// Fill the last level's set beyond capacity and check that L3 evictions
	// purge upper levels too.
	cfgs := []LevelConfig{
		{Name: "L1", Size: 2 << 10, Ways: 8, LineSize: 64},
		{Name: "L2", Size: 2 << 10, Ways: 8, LineSize: 64},
		{Name: "L3", Size: 2 << 10, Ways: 8, LineSize: 64},
	}
	h := mustHierarchy(t, cfgs)
	sets := uint64(cfgs[2].Sets())
	// 9 lines in one L3 set: the first must be back-invalidated everywhere.
	for i := uint64(0); i < 9; i++ {
		h.Access(i * sets * 64)
	}
	if h.Contains(0, 0) || h.Contains(1, 0) || h.Contains(2, 0) {
		t.Fatalf("back-invalidation failed: line 0 still resident somewhere")
	}
}

func TestResetCountersPreservesContents(t *testing.T) {
	h := mustHierarchy(t, TinyConfig())
	h.Access(0x40)
	h.ResetCounters()
	if h.Accesses != 0 {
		t.Fatalf("counters not reset")
	}
	if lvl := h.Access(0x40); lvl != 0 {
		t.Fatalf("cache contents should survive counter reset, got level %d", lvl)
	}
}

func TestBuildChainSingleCycle(t *testing.T) {
	cfg := ChaseConfig{Elements: 64, StrideBytes: 64, Seed: 9}
	chain, err := BuildChain(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(chain) != 64 {
		t.Fatalf("chain length %d", len(chain))
	}
	seen := map[uint64]bool{}
	for _, a := range chain {
		if seen[a] {
			t.Fatalf("address visited twice: %#x", a)
		}
		seen[a] = true
	}
}

func TestBuildChainDeterministic(t *testing.T) {
	cfg := ChaseConfig{Elements: 32, StrideBytes: 64, Seed: 5}
	a, _ := BuildChain(cfg)
	b, _ := BuildChain(cfg)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("chain not deterministic at %d", i)
		}
	}
}

func TestBuildChainValidation(t *testing.T) {
	if _, err := BuildChain(ChaseConfig{Elements: 1, StrideBytes: 64}); err == nil {
		t.Fatalf("1-element chain should fail")
	}
	if _, err := BuildChain(ChaseConfig{Elements: 8, StrideBytes: 0}); err == nil {
		t.Fatalf("zero stride should fail")
	}
}

func TestChaseFitsL1AllHits(t *testing.T) {
	cfgs := TinyConfig() // L1 = 16 lines
	res, err := RunSweepPoint(cfgs, SweepPoint{Region: RegionL1, StrideBytes: 64, Elements: 8}, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.HitRate[0] != 1 {
		t.Fatalf("L1-resident chase hit rate = %v want 1", res.HitRate[0])
	}
	if res.MissRate[0] != 0 || res.MemRate != 0 {
		t.Fatalf("L1-resident chase should never miss: %+v", res)
	}
}

func TestChaseThrashesL1HitsL2(t *testing.T) {
	// Tiny L1 holds 16 lines; 32 elements thrash it completely but fit L2
	// (64 lines), giving the exact (L1DM=1, L2DH=1) staircase step.
	res, err := RunSweepPoint(TinyConfig(), SweepPoint{Region: RegionL2, StrideBytes: 64, Elements: 32}, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.MissRate[0] != 1 {
		t.Fatalf("L1 miss rate = %v want 1", res.MissRate[0])
	}
	if res.HitRate[1] != 1 {
		t.Fatalf("L2 hit rate = %v want 1", res.HitRate[1])
	}
}

func TestChaseMemoryRegion(t *testing.T) {
	// 8x the last level: every access goes to memory.
	last := TinyConfig()[2]
	res, err := RunSweepPoint(TinyConfig(), SweepPoint{Region: RegionMem, StrideBytes: 64, Elements: 8 * last.Lines()}, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.MemRate != 1 {
		t.Fatalf("memory rate = %v want 1", res.MemRate)
	}
	for i, hr := range res.HitRate {
		if hr != 0 {
			t.Fatalf("level %d hit rate = %v want 0", i, hr)
		}
	}
}

func TestWideStrideHalvesEffectiveCapacity(t *testing.T) {
	// With stride 128B on 64B lines only every other set is usable, so a
	// chain of just over half the L1 lines already thrashes.
	cfgs := TinyConfig() // L1: 16 lines, 8 sets, 2 ways
	n := 12              // fits 16 lines at stride 64, thrashes 8 effective at 128
	res64, err := RunSweepPoint(cfgs, SweepPoint{StrideBytes: 64, Elements: n}, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	res128, err := RunSweepPoint(cfgs, SweepPoint{StrideBytes: 128, Elements: n}, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res64.HitRate[0] != 1 {
		t.Fatalf("stride-64 chase should fit L1, hit rate %v", res64.HitRate[0])
	}
	if res128.HitRate[0] != 0 {
		t.Fatalf("stride-128 chase should thrash L1, hit rate %v", res128.HitRate[0])
	}
}

func TestBuildSweepRegions(t *testing.T) {
	points := BuildSweep(SPRLikeConfig(), []int{64, 128})
	if len(points) == 0 {
		t.Fatalf("empty sweep")
	}
	regions := map[string]int{}
	for _, p := range points {
		regions[p.Region.String()]++
		if p.Elements < 2 {
			t.Fatalf("degenerate point %v", p)
		}
	}
	for _, r := range []string{"L1", "L2", "L3", "M"} {
		if regions[r] == 0 {
			t.Fatalf("region %s missing from sweep: %v", r, regions)
		}
	}
}

func TestSweepSteadyStateIsExact(t *testing.T) {
	// Every point of the full sweep must produce exact 0/1 rates: this is
	// what makes the cache expectation basis well defined.
	cfgs := TinyConfig()
	for _, p := range BuildSweep(cfgs, []int{64, 128}) {
		res, err := RunSweepPoint(cfgs, p, 11, 2)
		if err != nil {
			t.Fatal(err)
		}
		for lvl := 0; lvl < 3; lvl++ {
			want := 0.0
			if int(p.Region) == lvl {
				want = 1
			}
			if math.Abs(res.HitRate[lvl]-want) > 0 {
				t.Errorf("%s: level %d hit rate = %v want %v", p.Name(), lvl, res.HitRate[lvl], want)
			}
		}
		wantMem := 0.0
		if p.Region == RegionMem {
			wantMem = 1
		}
		if res.MemRate != wantMem {
			t.Errorf("%s: mem rate = %v want %v", p.Name(), res.MemRate, wantMem)
		}
	}
}

// Property: hits + misses at L1 equals total accesses, and level hit rates
// sum (with memory) to 1 per access.
func TestConservationProperty(t *testing.T) {
	f := func(seedRaw uint8, elemsRaw uint8) bool {
		n := int(elemsRaw)%120 + 4
		res, err := RunSweepPoint(TinyConfig(), SweepPoint{StrideBytes: 64, Elements: n}, int64(seedRaw), 2)
		if err != nil {
			return false
		}
		if res.HitRate[0]+res.MissRate[0] != 1 {
			return false
		}
		sum := res.MemRate
		for _, hr := range res.HitRate {
			sum += hr
		}
		return math.Abs(sum-1) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
