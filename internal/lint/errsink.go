package lint

import (
	"go/ast"
	"go/types"
)

// ErrSink flags call statements that silently discard an error result. A
// swallowed error can turn a failed solve or a short write into a plausible
// but wrong report, which is worse than a crash for a measurement tool.
// Exemptions, chosen to keep the signal high:
//
//   - the fmt print family — on this repo's cli harness all human output
//     goes through injected writers whose failure the command cannot
//     meaningfully recover from mid-report;
//   - methods on strings.Builder and bytes.Buffer, which are documented
//     never to fail;
//   - `defer`/`go` statements and explicit `_ =` discards, which are
//     visible decisions rather than silent ones.
var ErrSink = &Analyzer{
	Name:      "errsink",
	Doc:       "flags statements that call an error-returning function and discard the result",
	TestFiles: true,
	Run:       runErrSink,
}

// fmtPrintFamily is the exempt fmt output surface.
var fmtPrintFamily = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
}

func runErrSink(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := ast.Unparen(stmt.X).(*ast.CallExpr)
			if !ok || !returnsError(p.Info, call) {
				return true
			}
			if fn := calleeFunc(p.Info, call); fn != nil {
				if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" && fmtPrintFamily[fn.Name()] {
					return true
				}
				if recv := fn.Type().(*types.Signature).Recv(); recv != nil && neverFails(recv.Type()) {
					return true
				}
				p.Reportf(call.Lparen, "%s returns an error that is discarded; handle it or assign it to _ explicitly", fn.FullName())
				return true
			}
			p.Reportf(call.Lparen, "call returns an error that is discarded; handle it or assign it to _ explicitly")
			return true
		})
	}
}

// returnsError reports whether a call yields an error among its results.
func returnsError(info *types.Info, call *ast.CallExpr) bool {
	t := info.TypeOf(call)
	switch t := t.(type) {
	case nil:
		return false
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return isErrorType(t)
	}
}

// neverFails reports whether recv is one of the write sinks whose methods
// are documented to always return a nil error.
func neverFails(recv types.Type) bool {
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	switch named.Obj().Pkg().Path() + "." + named.Obj().Name() {
	case "strings.Builder", "bytes.Buffer":
		return true
	}
	return false
}
