package lint

import (
	"go/ast"
	"go/types"
)

// MapOrder protects the byte-identical-report invariant: Go's map iteration
// order is deliberately randomized, so a `range` over a map may not feed an
// io.Writer, fmt output, or a slice the function returns — any of those
// leaks iteration order into observable results. The sanctioned pattern
// (collect keys into a local slice, sort, iterate the slice) never trips the
// analyzer because the map-range body then only appends to a local that is
// sorted before use.
var MapOrder = &Analyzer{
	Name:      "maporder",
	Doc:       "flags range-over-map loops whose bodies write output or build returned slices (nondeterministic order)",
	TestFiles: true,
	Run:       runMapOrder,
}

// writeMethods are method names treated as io writes when called inside a
// map-range body.
var writeMethods = map[string]bool{
	"Write":       true,
	"WriteString": true,
	"WriteByte":   true,
	"WriteRune":   true,
	"WriteTo":     true,
}

// fmtOutput are fmt functions that render values; feeding them from a
// map-range body makes the rendered order nondeterministic.
var fmtOutput = map[string]bool{
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Print": true, "Printf": true, "Println": true,
	"Sprint": true, "Sprintf": true, "Sprintln": true,
}

func runMapOrder(p *Pass) {
	for _, f := range p.Files {
		eachFunc(f, func(_ *ast.FuncDecl, ftype *ast.FuncType, body *ast.BlockStmt) {
			returned := returnedIdents(p.Info, ftype, body)
			inspectShallow(body, func(n ast.Node) bool {
				rng, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				t := p.Info.TypeOf(rng.X)
				if t == nil {
					return true
				}
				if _, isMap := t.Underlying().(*types.Map); !isMap {
					return true
				}
				sink, appended := findOrderSink(p.Info, rng.Body, returned)
				if sink == "" {
					return true
				}
				// Collect-then-sort is the sanctioned pattern: appending map
				// keys to a slice that the same function later sorts erases
				// the iteration order before anyone can observe it.
				if appended != nil && sortedInFunc(p.Info, body, appended) {
					return true
				}
				p.Reportf(rng.For, "iteration over map %s %s; map order is nondeterministic — iterate a sorted key slice instead",
					types.ExprString(rng.X), sink)
				return true
			})
		})
	}
}

// returnedIdents collects the objects a function can return: named results
// plus identifiers appearing (directly or via &x) in return statements.
// Appending to one of these inside a map-range makes the returned order
// nondeterministic.
func returnedIdents(info *types.Info, ftype *ast.FuncType, body *ast.BlockStmt) map[types.Object]bool {
	out := make(map[types.Object]bool)
	if ftype.Results != nil {
		for _, field := range ftype.Results.List {
			for _, name := range field.Names {
				if obj := info.Defs[name]; obj != nil {
					out[obj] = true
				}
			}
		}
	}
	inspectShallow(body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			expr := ast.Unparen(res)
			if u, ok := expr.(*ast.UnaryExpr); ok {
				expr = ast.Unparen(u.X)
			}
			if id, ok := expr.(*ast.Ident); ok {
				if obj := info.Uses[id]; obj != nil {
					out[obj] = true
				}
			}
		}
		return true
	})
	return out
}

// findOrderSink scans a map-range body (including closures, which run per
// iteration) for the first construct that leaks iteration order. It returns
// a description (or "") and, for append sinks, the slice object appended to
// so the caller can check for a later sort.
func findOrderSink(info *types.Info, body ast.Node, returned map[types.Object]bool) (string, types.Object) {
	sink := ""
	var appended types.Object
	ast.Inspect(body, func(n ast.Node) bool {
		if sink != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if fn := calleeFunc(info, n); fn != nil {
				if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" && fmtOutput[fn.Name()] {
					sink = "feeds fmt." + fn.Name()
					return false
				}
				if recv := fn.Type().(*types.Signature).Recv(); recv != nil && writeMethods[fn.Name()] {
					sink = "writes via (" + recv.Type().String() + ")." + fn.Name()
					return false
				}
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok {
					continue
				}
				id, ok := ast.Unparen(call.Fun).(*ast.Ident)
				if !ok || id.Name != "append" {
					continue
				}
				if _, isBuiltin := info.Uses[id].(*types.Builtin); !isBuiltin {
					continue
				}
				if i >= len(n.Lhs) && len(n.Lhs) != 1 {
					continue
				}
				lhs := n.Lhs[0]
				if len(n.Lhs) == len(n.Rhs) {
					lhs = n.Lhs[i]
				}
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
					if obj := info.Uses[id]; obj != nil && returned[obj] {
						sink = "appends to returned slice " + id.Name
						appended = obj
						return false
					}
				}
			}
		}
		return true
	})
	return sink, appended
}

// sortedInFunc reports whether the function body passes obj to a sort or
// slices ordering function anywhere — the signal that a collect-then-sort
// pattern erases map-iteration order before it escapes.
func sortedInFunc(info *types.Info, body ast.Node, obj types.Object) bool {
	found := false
	inspectShallow(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := ast.Unparen(arg).(*ast.Ident); ok && info.Uses[id] == obj {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
