package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// AllowEntry is one vetted exception: a diagnostic from Analyzer at
// File:Line that the repository has decided to keep.
type AllowEntry struct {
	// Analyzer names the check being excepted.
	Analyzer string
	// File is the slash-separated path relative to the module root.
	File string
	// Line is the 1-based source line the diagnostic fires on.
	Line int
	// Reason is the trailing comment text, if any.
	Reason string
	// SourceLine is the 1-based line of the entry inside the allowlist file,
	// for stale-entry reporting.
	SourceLine int
}

// key is the match identity of an entry or diagnostic.
func (e AllowEntry) key() string { return e.Analyzer + "\x00" + e.File + "\x00" + strconv.Itoa(e.Line) }

// Allowlist is a parsed lint.allow file. Every entry must match at least one
// diagnostic per run, otherwise it is stale — stale entries are errors, so
// the allowlist cannot silently outlive the code it excuses.
type Allowlist struct {
	// Path is the file the allowlist was parsed from (for error messages).
	Path string
	// Entries are the parsed exceptions, in file order.
	Entries []AllowEntry
}

// ParseAllowFile reads and parses an allowlist file. Each non-blank,
// non-comment line has the form
//
//	<analyzer> <file>:<line>        # reason
//
// with <file> slash-separated and relative to the module root. '#' starts a
// comment anywhere on a line. The reason is mandatory: an exception nobody
// wrote down a justification for is treated as malformed, not silently
// accepted — reviewers read this file, and a bare entry tells them nothing.
func ParseAllowFile(path string) (*Allowlist, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ParseAllow(path, string(data))
}

// ParseAllow parses allowlist content; path is used only in error messages.
func ParseAllow(path, content string) (*Allowlist, error) {
	al := &Allowlist{Path: path}
	for i, raw := range strings.Split(content, "\n") {
		line := raw
		reason := ""
		if idx := strings.Index(line, "#"); idx >= 0 {
			reason = strings.TrimSpace(line[idx+1:])
			line = line[:idx]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("%s:%d: want `<analyzer> <file>:<line>`, got %q", path, i+1, strings.TrimSpace(raw))
		}
		loc := fields[1]
		colon := strings.LastIndex(loc, ":")
		if colon <= 0 || colon == len(loc)-1 {
			return nil, fmt.Errorf("%s:%d: location %q is not <file>:<line>", path, i+1, loc)
		}
		lineNo, err := strconv.Atoi(loc[colon+1:])
		if err != nil || lineNo <= 0 {
			return nil, fmt.Errorf("%s:%d: bad line number in %q", path, i+1, loc)
		}
		file := filepath.ToSlash(loc[:colon])
		if filepath.IsAbs(file) || strings.HasPrefix(file, "../") {
			return nil, fmt.Errorf("%s:%d: file %q must be relative to the module root", path, i+1, file)
		}
		if reason == "" {
			return nil, fmt.Errorf("%s:%d: entry %s %s:%d must carry a '# reason' — an unjustified exception is not an exception", path, i+1, fields[0], file, lineNo)
		}
		al.Entries = append(al.Entries, AllowEntry{
			Analyzer:   fields[0],
			File:       file,
			Line:       lineNo,
			Reason:     reason,
			SourceLine: i + 1,
		})
	}
	return al, nil
}

// Filter removes allowed diagnostics and returns the survivors plus the
// entries that matched nothing (stale). relFile converts a diagnostic's
// absolute file name into the root-relative slash form the allowlist uses.
func (al *Allowlist) Filter(diags []Diagnostic, relFile func(string) string) (kept []Diagnostic, stale []AllowEntry) {
	allowed := make(map[string]AllowEntry, len(al.Entries))
	used := make(map[string]bool, len(al.Entries))
	for _, e := range al.Entries {
		allowed[e.key()] = e
	}
	for _, d := range diags {
		k := AllowEntry{Analyzer: d.Analyzer, File: relFile(d.Pos.Filename), Line: d.Pos.Line}.key()
		if _, ok := allowed[k]; ok {
			used[k] = true
			continue
		}
		kept = append(kept, d)
	}
	for _, e := range al.Entries {
		if !used[e.key()] {
			stale = append(stale, e)
		}
	}
	return kept, stale
}
