package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// CacheKey proves cache-key completeness by struct-field analysis. The
// serving tier's result cache, the persistent store and the shard ring all
// key on canonical config strings (core.Config.String, cat.RunConfig.String,
// validate.Request.Key, …). A field that changes results but is missing from
// the canonical form makes two different analyses share one cache entry —
// the worst kind of wrong answer, served fast, from disk, forever.
//
// Structs opt in with a `lint:cachekey` marker in the type's doc comment.
// For a marked struct the analyzer requires every named field to be
// referenced — directly or through same-package calls — by the struct's
// canonical String() or Key() method. Deliberate exclusions (fields that
// provably cannot change results, like Workers) carry a field marker:
//
//	// lint:cachekey-exempt <reason>
//
// The reason is mandatory: an exemption nobody can justify is a finding.
var CacheKey = &Analyzer{
	Name: "cachekey",
	Doc:  "proves every field of a lint:cachekey struct reaches its canonical String()/Key() method or carries a reasoned exempt marker",
	Run:  runCacheKey,
}

const (
	cacheKeyMarker    = "lint:cachekey"
	cacheKeyExemptTag = "lint:cachekey-exempt"
)

// markerLine scans comment groups for a line containing marker and returns
// (found, text-after-marker). The exempt tag is checked before the struct
// marker wherever both could appear, since one is a prefix of the other.
func markerLine(marker string, groups ...*ast.CommentGroup) (bool, string) {
	for _, g := range groups {
		if g == nil {
			continue
		}
		for _, c := range g.List {
			text := strings.TrimLeft(strings.TrimPrefix(strings.TrimPrefix(c.Text, "//"), "/*"), " \t")
			if rest, ok := strings.CutPrefix(text, marker); ok {
				if rest == "" || rest[0] == ' ' || rest[0] == '\t' {
					return true, strings.TrimSpace(strings.TrimSuffix(rest, "*/"))
				}
			}
		}
	}
	return false, ""
}

// keyStruct is one marked struct and the syntax needed to check it.
type keyStruct struct {
	spec *ast.TypeSpec
	st   *ast.StructType
	obj  *types.TypeName
}

func runCacheKey(p *Pass) {
	structs := markedStructs(p)
	if len(structs) == 0 {
		return
	}
	decls := packageFuncDecls(p)
	for _, ks := range structs {
		checkKeyStruct(p, ks, decls)
	}
}

// markedStructs collects the package's lint:cachekey structs in file order.
func markedStructs(p *Pass) []keyStruct {
	var out []keyStruct
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				if exempt, _ := markerLine(cacheKeyExemptTag, gd.Doc, ts.Doc, ts.Comment); exempt {
					p.Reportf(ts.Name.Pos(), "%s is a field marker; mark the struct with %s instead", cacheKeyExemptTag, cacheKeyMarker)
					continue
				}
				found, _ := markerLine(cacheKeyMarker, gd.Doc, ts.Doc, ts.Comment)
				if !found {
					continue
				}
				obj, ok := p.Info.Defs[ts.Name].(*types.TypeName)
				if !ok {
					continue
				}
				out = append(out, keyStruct{spec: ts, st: st, obj: obj})
			}
		}
	}
	return out
}

// packageFuncDecls indexes the package's function and method declarations by
// their type-checker object, for transitive reachability walks.
func packageFuncDecls(p *Pass) map[*types.Func]*ast.FuncDecl {
	decls := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
				decls[fn] = fd
			}
		}
	}
	return decls
}

// canonicalMethods returns the struct's String and Key method declarations,
// in file order (not map order — the walk order must stay deterministic).
func canonicalMethods(p *Pass, obj *types.TypeName) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Recv == nil {
				continue
			}
			if fd.Name.Name != "String" && fd.Name.Name != "Key" {
				continue
			}
			fn, ok := p.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			recv := fn.Type().(*types.Signature).Recv()
			if recv == nil {
				continue
			}
			t := recv.Type()
			if ptr, ok := t.(*types.Pointer); ok {
				t = ptr.Elem()
			}
			if named, ok := t.(*types.Named); ok && named.Obj() == obj {
				out = append(out, fd)
			}
		}
	}
	return out
}

// checkKeyStruct verifies one marked struct: every named, non-exempt field
// must be referenced by the canonical method set or the code it calls within
// the package.
func checkKeyStruct(p *Pass, ks keyStruct, decls map[*types.Func]*ast.FuncDecl) {
	methods := canonicalMethods(p, ks.obj)
	if len(methods) == 0 {
		p.Reportf(ks.spec.Name.Pos(), "struct %s is marked %s but has no String() or Key() method to render its cache key", ks.obj.Name(), cacheKeyMarker)
		return
	}
	referenced := fieldsReferenced(p, methods, decls)
	for _, field := range ks.st.Fields.List {
		exempt, reason := markerLine(cacheKeyExemptTag, field.Doc, field.Comment)
		if exempt && reason == "" {
			p.Reportf(field.Pos(), "%s marker on %s.%s needs a reason; an exemption nobody can justify is not an exemption", cacheKeyExemptTag, ks.obj.Name(), fieldLabel(field))
			continue
		}
		if exempt {
			continue
		}
		for _, name := range field.Names {
			obj, ok := p.Info.Defs[name].(*types.Var)
			if !ok {
				continue
			}
			if !referenced[obj] {
				p.Reportf(name.Pos(), "field %s.%s does not reach the canonical String()/Key() form; include it in the key or mark it // %s <reason>",
					ks.obj.Name(), name.Name, cacheKeyExemptTag)
			}
		}
	}
}

// fieldLabel names a field list entry for diagnostics (embedded fields have
// no name of their own).
func fieldLabel(field *ast.Field) string {
	if len(field.Names) > 0 {
		names := make([]string, len(field.Names))
		for i, n := range field.Names {
			names[i] = n.Name
		}
		return strings.Join(names, ",")
	}
	return types.ExprString(field.Type)
}

// fieldsReferenced walks the canonical methods plus every same-package
// function they (transitively) call, collecting the struct-field objects
// selected anywhere along the way. Selection identity is the typechecker's
// field object, so renames and embedded copies cannot alias.
func fieldsReferenced(p *Pass, roots []*ast.FuncDecl, decls map[*types.Func]*ast.FuncDecl) map[*types.Var]bool {
	referenced := make(map[*types.Var]bool)
	visited := make(map[*ast.FuncDecl]bool)
	queue := append([]*ast.FuncDecl(nil), roots...)
	for len(queue) > 0 {
		fd := queue[0]
		queue = queue[1:]
		if visited[fd] {
			continue
		}
		visited[fd] = true
		ast.Inspect(fd, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				if sel, ok := p.Info.Selections[n]; ok && sel.Kind() == types.FieldVal {
					if v, ok := sel.Obj().(*types.Var); ok {
						referenced[v] = true
					}
				}
			case *ast.CallExpr:
				if fn := calleeFunc(p.Info, n); fn != nil {
					if callee, ok := decls[fn]; ok && !visited[callee] {
						queue = append(queue, callee)
					}
				}
			}
			return true
		})
	}
	return referenced
}
