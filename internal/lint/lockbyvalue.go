package lint

import (
	"go/ast"
	"go/types"
)

// LockByValue detects sync primitives copied by value. A copied sync.Mutex
// is a fork: the copy and the original each guard nothing, and the data race
// they were supposed to prevent becomes a nondeterminism source the rest of
// this gate exists to rule out. A copied sync.Once can re-run its function;
// a copied sync.WaitGroup splits its counter. The three copy shapes that
// slip past review are value method receivers (every call copies the
// receiver), plain assignment, and range-clause element copies.
var LockByValue = &Analyzer{
	Name:      "lockbyvalue",
	Doc:       "detects sync.Mutex/RWMutex/Once/WaitGroup values copied via value receivers, assignment or range clauses",
	TestFiles: true,
	Run:       runLockByValue,
}

// syncLockTypes are the sync types whose values must never be copied once
// used (per their package documentation).
var syncLockTypes = map[string]bool{
	"Mutex": true, "RWMutex": true, "Once": true, "WaitGroup": true,
	"Cond": true, "Pool": true, "Map": true,
}

// containsLock reports whether a value of type t holds one of the sync
// primitives, directly or through struct fields and array elements. Pointers
// break containment: copying a *sync.Mutex shares the lock, which is fine.
func containsLock(t types.Type) bool {
	return lockWalk(t, make(map[types.Type]bool))
}

func lockWalk(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		if pkg := named.Obj().Pkg(); pkg != nil && pkg.Path() == "sync" && syncLockTypes[named.Obj().Name()] {
			return true
		}
		return lockWalk(named.Underlying(), seen)
	}
	switch t := t.(type) {
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			if lockWalk(t.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return lockWalk(t.Elem(), seen)
	}
	return false
}

// copiesExisting reports whether an expression denotes an existing value
// whose use on the right-hand side of an assignment copies it: identifiers,
// field selections, index expressions and dereferences. Composite literals
// and calls construct fresh values, which is initialization, not copying.
func copiesExisting(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name != "_"
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		return true
	}
	return false
}

func runLockByValue(p *Pass) {
	// Type names render package-relative: "Counter", not the full import
	// path, and "sync.WaitGroup" for foreign packages.
	typeName := func(t types.Type) string {
		return types.TypeString(t, types.RelativeTo(p.Pkg))
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Recv == nil || len(n.Recv.List) == 0 {
					return true
				}
				rt := p.Info.TypeOf(n.Recv.List[0].Type)
				if rt == nil {
					return true
				}
				if _, isPtr := rt.(*types.Pointer); !isPtr && containsLock(rt) {
					p.Reportf(n.Recv.List[0].Pos(), "method %s has a value receiver of lock-holding type %s; every call copies the lock — use a pointer receiver", n.Name.Name, typeName(rt))
				}
			case *ast.AssignStmt:
				if len(n.Lhs) != len(n.Rhs) {
					return true
				}
				for i, rhs := range n.Rhs {
					if !copiesExisting(rhs) {
						continue
					}
					if t := p.Info.TypeOf(rhs); t != nil && containsLock(t) && !isBlank(n.Lhs[i]) {
						p.Reportf(rhs.Pos(), "assignment copies lock-holding value of type %s; keep a pointer to it instead", typeName(t))
					}
				}
			case *ast.ValueSpec:
				for i, v := range n.Values {
					if !copiesExisting(v) || i >= len(n.Names) || n.Names[i].Name == "_" {
						continue
					}
					if t := p.Info.TypeOf(v); t != nil && containsLock(t) {
						p.Reportf(v.Pos(), "declaration copies lock-holding value of type %s; keep a pointer to it instead", typeName(t))
					}
				}
			case *ast.RangeStmt:
				for _, v := range []ast.Expr{n.Key, n.Value} {
					if v == nil || isBlank(v) {
						continue
					}
					if t := p.Info.TypeOf(v); t != nil && containsLock(t) {
						p.Reportf(v.Pos(), "range clause copies lock-holding value of type %s per iteration; range over indices or pointers instead", typeName(t))
					}
				}
			}
			return true
		})
	}
}

// isBlank reports whether e is the blank identifier.
func isBlank(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "_"
}
