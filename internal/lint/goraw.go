package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// GoRaw keeps ad-hoc concurrency out of everything but the two sanctioned
// homes. internal/par owns fan-out: its pool contains panics as typed
// *PanicError values and reports the lowest-index error, so Workers=1 and
// Workers=N observe the same failure. internal/server owns the long-lived
// job-worker pool and the HTTP serve/drain lifecycle. A raw `go` statement
// or hand-rolled sync.WaitGroup anywhere else bypasses both guarantees: one
// panicking goroutine kills the process, and error selection becomes a race.
// Test files are covered too — a chaos test that fans out with bare
// goroutines can deadlock the suite on a contained panic.
var GoRaw = &Analyzer{
	Name:      "goraw",
	Doc:       "flags raw go statements and sync.WaitGroup fan-out outside internal/par and internal/server",
	Scope:     goRawScope,
	TestFiles: true,
	Run:       runGoRaw,
}

// goRawExemptScopes are the sanctioned concurrency homes, matched by package
// path suffix so fixture packages can mirror them.
var goRawExemptScopes = []string{
	"internal/par",
	"internal/server",
}

func goRawScope(pkgPath string) bool {
	for _, s := range goRawExemptScopes {
		if strings.HasSuffix(pkgPath, s) {
			return false
		}
	}
	return true
}

func runGoRaw(p *Pass) {
	for _, f := range p.Files {
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			switch n := n.(type) {
			case *ast.GoStmt:
				if inLoop(stack) {
					p.Reportf(n.Go, "goroutine fan-out in a loop; route it through par.For/ForErr for panic containment and lowest-index-wins errors")
				} else {
					p.Reportf(n.Go, "raw go statement outside internal/par and internal/server; use par.For/ForErr, or justify it in lint.allow")
				}
			case *ast.Ident:
				if obj, ok := p.Info.Defs[n].(*types.Var); ok && isSyncWaitGroup(obj.Type()) {
					p.Reportf(n.Pos(), "sync.WaitGroup %s declared outside internal/par and internal/server; par.For/ForErr already joins, contains panics and orders errors", n.Name)
				}
			}
			stack = append(stack, n)
			return true
		})
	}
}

// inLoop reports whether the node stack passes through a for/range statement
// (goroutines launched per iteration are fan-out, the exact shape par.For
// replaces).
func inLoop(stack []ast.Node) bool {
	for _, n := range stack {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			return true
		}
	}
	return false
}

// isSyncWaitGroup reports whether t is sync.WaitGroup itself.
func isSyncWaitGroup(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "sync" && named.Obj().Name() == "WaitGroup"
}
