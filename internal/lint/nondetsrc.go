package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// NonDetSrc keeps sources of nondeterminism out of the numeric core. The
// QRCP pivot choice, the noise filter and the Workers=1-vs-N byte-identical
// guarantee all assume that internal/core, internal/mat, internal/par and
// internal/report compute from their inputs alone: no wall-clock reads, no
// global (unseeded) randomness, and no select racing multiple ready
// channels (the runtime picks among ready cases uniformly at random). The
// distributed serving tier joins the scope: internal/store entries and
// internal/shard placement must be pure functions of their keys, or
// replicas and restarts would disagree about what is cached where.
var NonDetSrc = &Analyzer{
	Name:  "nondetsrc",
	Doc:   "flags time.Now, unseeded math/rand and multi-case select inside the deterministic core packages",
	Scope: nonDetScope,
	Run:   runNonDetSrc,
}

// nonDetScopes are the package-path suffixes the analyzer guards. Matching
// by suffix lets testdata fixture packages mirror a guarded path.
var nonDetScopes = []string{
	"internal/core",
	"internal/fault",
	"internal/mat",
	"internal/par",
	"internal/report",
	"internal/shard",
	"internal/similarity",
	"internal/store",
	"internal/validate",
}

func nonDetScope(pkgPath string) bool {
	for _, s := range nonDetScopes {
		if strings.HasSuffix(pkgPath, s) {
			return true
		}
	}
	return false
}

// randConstructors are math/rand functions that build explicitly seeded
// generators and are therefore allowed; every other package-level math/rand
// function reads the global source.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true,
	"NewChaCha8": true,
}

func runNonDetSrc(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				fn, ok := p.Info.Uses[n.Sel].(*types.Func)
				if !ok || fn.Pkg() == nil {
					return true
				}
				switch fn.Pkg().Path() {
				case "time":
					if fn.Name() == "Now" {
						p.Reportf(n.Sel.Pos(), "time.Now in a deterministic core package; results must depend on inputs only")
					}
				case "math/rand", "math/rand/v2":
					if fn.Type().(*types.Signature).Recv() == nil && !randConstructors[fn.Name()] {
						p.Reportf(n.Sel.Pos(), "%s.%s uses the global rand source; construct an explicitly seeded *rand.Rand instead",
							fn.Pkg().Path(), fn.Name())
					}
				}
			case *ast.SelectStmt:
				ready := 0
				for _, clause := range n.Body.List {
					if c, ok := clause.(*ast.CommClause); ok && c.Comm != nil {
						ready++
					}
				}
				if ready >= 2 {
					p.Reportf(n.Select, "select with %d communication cases; the runtime chooses among ready cases at random", ready)
				}
			}
			return true
		})
	}
}
