package lint

import "testing"

// expect asserts the diagnostics' (analyzer, line) pairs.
func expect(t *testing.T, diags []Diagnostic, want ...[2]int) {
	t.Helper()
	if len(diags) != len(want) {
		t.Fatalf("got %d diagnostics, want %d: %v", len(diags), len(want), diags)
	}
	for i, w := range want {
		if diags[i].Pos.Line != w[1] {
			t.Errorf("diag %d (%s) at line %d, want %d: %s", i, diags[i].Analyzer, diags[i].Pos.Line, w[1], diags[i].Message)
		}
	}
}

func TestMapOrderFlagsOutputSinks(t *testing.T) {
	src := `package p

import (
	"fmt"
	"strings"
)

func FmtSink(m map[string]int) {
	for k := range m { // line 9: flagged, feeds fmt
		fmt.Println(k)
	}
}

func WriteSink(m map[string]int, b *strings.Builder) {
	for k := range m { // line 15: flagged, writes via Builder
		b.WriteString(k)
	}
}

func ReturnSink(m map[string]int) []string {
	var out []string
	for k := range m { // line 22: flagged, appends to returned slice
		out = append(out, k)
	}
	return out
}
`
	diags := analyze(t, "p", src, MapOrder)
	expect(t, diags, [2]int{0, 9}, [2]int{0, 15}, [2]int{0, 22})
}

func TestMapOrderAllowsSanctionedPatterns(t *testing.T) {
	src := `package p

import (
	"fmt"
	"sort"
)

// Collect-then-sort: the append target is sorted before it escapes.
func Sorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Ranging a slice is always fine.
func OverSlice(s []string) {
	for _, v := range s {
		fmt.Println(v)
	}
}

// A pure reduction over a map leaks no order.
func Sum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}
`
	expect(t, analyze(t, "p", src, MapOrder))
}

func TestFloatEq(t *testing.T) {
	src := `package p

func Bad(a, b float64) bool { return a == b } // line 3: flagged

func BadNeq(a float32, b float32) bool { return a != b } // line 5: flagged

func NaNIdiom(a float64) bool { return a != a } // ok: NaN check

func Ints(a, b int) bool { return a == b } // ok: not floats

func Consts() bool { return 1.5 == 1.5 } // ok: constant folded
`
	diags := analyze(t, "p", src, FloatEq)
	expect(t, diags, [2]int{0, 3}, [2]int{0, 5})
}

// TestFloatEqApprovedHelpers places an approved helper inside a directory
// ending in internal/mat: its body may use raw equality, its neighbors may
// not.
func TestFloatEqApprovedHelpers(t *testing.T) {
	src := `package mat

func ExactEq(a, b float64) bool { return a == b } // ok: approved helper

func Other(a, b float64) bool { return a == b } // line 5: flagged
`
	diags := analyze(t, "internal/mat", src, FloatEq)
	expect(t, diags, [2]int{0, 5})
}

func TestNonDetSrcFlagsInsideScope(t *testing.T) {
	src := `package core

import (
	"math/rand"
	"time"
)

func Stamp() int64 { return time.Now().UnixNano() } // line 8: flagged

func Roll() int { return rand.Intn(6) } // line 10: flagged, global source

func Seeded(seed int64) float64 { // ok: explicit seed
	return rand.New(rand.NewSource(seed)).Float64()
}

func Race(a, b chan int) int { // flagged: 2 ready cases (line 17)
	select {
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

func Single(a chan int) int { // ok: one case plus default
	select {
	case v := <-a:
		return v
	default:
		return 0
	}
}
`
	diags := analyze(t, "internal/core", src, NonDetSrc)
	expect(t, diags, [2]int{0, 8}, [2]int{0, 10}, [2]int{0, 17})
}

func TestNonDetSrcScopeExcludesOtherPackages(t *testing.T) {
	src := `package p

import "time"

func Stamp() int64 { return time.Now().UnixNano() } // ok: outside scope
`
	expect(t, analyze(t, "internal/server", src, NonDetSrc))
}

func TestErrSink(t *testing.T) {
	src := `package p

import (
	"fmt"
	"os"
	"strings"
)

func Bad(path string) {
	os.Remove(path) // line 10: flagged
}

func Explicit(path string) {
	_ = os.Remove(path) // ok: visible decision
}

func Deferred(f *os.File) {
	defer f.Close() // ok: defers are exempt
}

func PrintFamily(b *strings.Builder) {
	fmt.Println("hi")       // ok: fmt print family
	fmt.Fprintf(b, "x")     // ok: fmt print family
	b.WriteString("y")      // ok: Builder never fails
}

func Checked(path string) error {
	return os.Remove(path) // ok: propagated
}
`
	diags := analyze(t, "p", src, ErrSink)
	expect(t, diags, [2]int{0, 10})
}
