package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// calleeFunc resolves the *types.Func a call invokes, or nil for calls
// through function values, conversions and builtins.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[f].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[f.Sel].(*types.Func)
		return fn
	}
	return nil
}

// isPkgFunc reports whether fn is the package-level function pkgPath.name.
func isPkgFunc(fn *types.Func, pkgPath, name string) bool {
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath && fn.Name() == name
}

// isFloat reports whether t's underlying type is a floating-point type.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isErrorType reports whether t is the predeclared error interface.
var errorType = types.Universe.Lookup("error").Type()

func isErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, errorType)
}

// modRelPath trims a package import path down to its module-relative tail
// starting at the first "internal/" segment, so scope and approval lists
// match both the real packages and testdata fixture packages that mirror
// their layout.
func modRelPath(pkgPath string) string {
	if idx := strings.Index(pkgPath, "internal/"); idx >= 0 {
		return pkgPath[idx:]
	}
	return pkgPath
}

// eachFunc visits every function body in the file: declarations and
// literals. Bodies are visited once each; the visitor must not assume outer
// bodies exclude nested literals.
func eachFunc(f *ast.File, visit func(decl *ast.FuncDecl, ftype *ast.FuncType, body *ast.BlockStmt)) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body != nil {
				visit(fn, fn.Type, fn.Body)
			}
		case *ast.FuncLit:
			visit(nil, fn.Type, fn.Body)
		}
		return true
	})
}

// inspectShallow walks n but does not descend into function literals — used
// when a property belongs to exactly one function body.
func inspectShallow(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		return fn(n)
	})
}
