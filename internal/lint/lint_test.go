package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule materializes a synthetic module in a temp dir: files maps
// module-relative paths to source text. A go.mod is added automatically.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	files["go.mod"] = "module example.com/fixture\n\ngo 1.23\n"
	for rel, src := range files {
		path := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

// analyze loads one synthetic package and runs the given analyzers over it.
// relDir chooses the package's module-relative directory, so tests can place
// code inside (or outside) an analyzer's scope.
func analyze(t *testing.T, relDir, src string, as ...*Analyzer) []Diagnostic {
	t.Helper()
	root := writeModule(t, map[string]string{relDir + "/f.go": src})
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir(filepath.Join(root, filepath.FromSlash(relDir)))
	if err != nil {
		t.Fatal(err)
	}
	return Run([]*Package{pkg}, as)
}

// TestPositionAccuracy pins the exact line and column each analyzer reports
// on a synthetic file whose offending tokens sit at known positions.
func TestPositionAccuracy(t *testing.T) {
	src := `package p

import "fmt"

func Bad(m map[string]int, a, b float64) bool {
	for k := range m {
		fmt.Println(k)
	}
	return a == b
}
`
	diags := Run(nil, nil)
	if len(diags) != 0 {
		t.Fatalf("empty run produced %d diagnostics", len(diags))
	}
	diags = analyze(t, "p", src, MapOrder, FloatEq)
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2: %v", len(diags), diags)
	}
	// Run sorts by position: the range on line 6 precedes the == on line 9.
	if d := diags[0]; d.Analyzer != "maporder" || d.Pos.Line != 6 || d.Pos.Column != 2 {
		t.Errorf("maporder at %d:%d (%s), want 6:2", d.Pos.Line, d.Pos.Column, d.Analyzer)
	}
	if d := diags[1]; d.Analyzer != "floateq" || d.Pos.Line != 9 || d.Pos.Column != 11 {
		t.Errorf("floateq at %d:%d (%s), want 9:11", d.Pos.Line, d.Pos.Column, d.Analyzer)
	}
	for _, d := range diags {
		if !strings.HasSuffix(d.Pos.Filename, filepath.FromSlash("p/f.go")) {
			t.Errorf("diagnostic filename %q does not point at p/f.go", d.Pos.Filename)
		}
	}
}

func TestByName(t *testing.T) {
	as, err := ByName([]string{"floateq", "errsink"})
	if err != nil || len(as) != 2 || as[0].Name != "floateq" || as[1].Name != "errsink" {
		t.Errorf("ByName = %v, %v", as, err)
	}
	if _, err := ByName([]string{"nosuch"}); err == nil {
		t.Error("ByName(nosuch) did not fail")
	}
}

func TestAllNamesSortedUnique(t *testing.T) {
	as := All()
	for i := 1; i < len(as); i++ {
		if as[i-1].Name >= as[i].Name {
			t.Errorf("All() not sorted/unique at %q >= %q", as[i-1].Name, as[i].Name)
		}
	}
}
