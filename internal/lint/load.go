package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one loaded, typechecked package of the module.
type Package struct {
	// Path is the package import path.
	Path string
	// Dir is the absolute directory the package was loaded from.
	Dir string
	// Fset is the loader-wide file set (shared across packages).
	Fset *token.FileSet
	// Files are the parsed non-test source files, in file-name order.
	Files []*ast.File
	// Types is the typechecked package.
	Types *types.Package
	// Info holds expression types, identifier definitions/uses and selections.
	Info *types.Info
	// TestFiles marks a test-augmented package (LoadDirTests): its Files
	// include _test.go sources, only TestFiles analyzers run on it, and only
	// diagnostics inside _test.go files are kept.
	TestFiles bool
}

// Loader parses and typechecks packages of a single module without any
// go/packages dependency. Standard-library imports are typechecked from
// GOROOT source via go/importer's "source" compiler; module-internal imports
// are resolved by mapping the import path onto the module directory and
// loading recursively. External (non-stdlib, non-module) dependencies are
// rejected — the module's go.mod declares none, and the loader keeping that
// property is itself a guarantee.
type Loader struct {
	// Root is the absolute module root (the directory holding go.mod).
	Root string
	// Module is the module path declared in go.mod.
	Module string
	// Fset accumulates positions for every parsed file.
	Fset *token.FileSet

	std      types.Importer
	pkgs     map[string]*Package // by import path
	testPkgs map[string][]*Package
	loading  map[string]bool // cycle guard
}

// NewLoader builds a loader for the module rooted at root (the directory
// containing go.mod).
func NewLoader(root string) (*Loader, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Root:     abs,
		Module:   modPath,
		Fset:     fset,
		std:      importer.ForCompiler(fset, "source", nil),
		pkgs:     make(map[string]*Package),
		testPkgs: make(map[string][]*Package),
		loading:  make(map[string]bool),
	}, nil
}

// sharedLoaders memoizes loaders per module root for the lifetime of the
// process: stdlib and module packages are source-typechecked once and shared
// across every subsequent run (the lint driver's own tests run the command
// in-process many times; without sharing, each run re-typechecks the entire
// stdlib import closure). Source files are immutable for the duration of a
// lint process, so the cache cannot go stale. Loading through a shared
// loader is serialized by sharedMu; the loaded packages themselves are
// read-only and safe for the concurrent analyzer passes.
var (
	sharedMu      sync.Mutex
	sharedLoaders = make(map[string]*Loader)
)

// SharedLoader returns the process-wide cached loader for a module root,
// creating it on first use.
func SharedLoader(root string) (*Loader, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	sharedMu.Lock()
	defer sharedMu.Unlock()
	if l, ok := sharedLoaders[abs]; ok {
		return l, nil
	}
	l, err := NewLoader(abs)
	if err != nil {
		return nil, err
	}
	sharedLoaders[abs] = l
	return l, nil
}

// FindRoot walks upward from dir to the nearest directory containing go.mod.
func FindRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := abs; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("no go.mod found in or above %s", abs)
		}
		d = parent
	}
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			mod := strings.TrimSpace(strings.Trim(strings.TrimSpace(rest), `"`))
			if mod != "" {
				return mod, nil
			}
		}
	}
	return "", fmt.Errorf("%s: no module directive", gomod)
}

// LoadAll loads every package directory under the module root, in import-path
// order, skipping testdata, vendor, hidden and underscore-prefixed
// directories.
func (l *Loader) LoadAll() ([]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(l.Root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != l.Root && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			dirs = append(dirs, filepath.Dir(path))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	dirs = dedupeSorted(dirs)
	pkgs := make([]*Package, 0, len(dirs))
	for _, dir := range dirs {
		pkg, err := l.LoadDir(dir)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// dedupeSorted removes adjacent duplicates from a sorted slice.
func dedupeSorted(s []string) []string {
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != s[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// LoadDir parses and typechecks the package in one directory, which must lie
// inside the module root (testdata fixture directories are allowed — that is
// how cmd/lint's golden tests load their seeded-violation packages).
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	path, err := l.importPath(abs)
	if err != nil {
		return nil, err
	}
	return l.load(path, abs)
}

// importPath maps an absolute directory inside the module onto its import
// path.
func (l *Loader) importPath(dir string) (string, error) {
	rel, err := filepath.Rel(l.Root, dir)
	if err != nil || rel == ".." || strings.HasPrefix(rel, ".."+string(filepath.Separator)) {
		return "", fmt.Errorf("directory %s is outside module root %s", dir, l.Root)
	}
	if rel == "." {
		return l.Module, nil
	}
	return l.Module + "/" + filepath.ToSlash(rel), nil
}

// load parses and typechecks one package, memoized by import path.
func (l *Loader) load(path, dir string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		names = append(names, name)
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("no buildable Go files in %s", dir)
	}
	sort.Strings(names)

	var files []*ast.File
	pkgName := ""
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		if pkgName == "" {
			pkgName = f.Name.Name
		} else if f.Name.Name != pkgName {
			return nil, fmt.Errorf("%s: mixed packages %s and %s in one directory", dir, pkgName, f.Name.Name)
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: l, FakeImportC: true}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", path, err)
	}
	pkg := &Package{Path: path, Dir: dir, Fset: l.Fset, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = pkg
	return pkg, nil
}

// LoadDirTests loads the directory's test code: an in-package test-augmented
// package (the regular sources plus same-package _test.go files, typechecked
// together), and, when present, the external foo_test package. Both come
// back flagged TestFiles, are memoized per directory, and are kept out of
// the import-resolution cache so other packages still import the non-test
// view. A directory with no test files yields an empty slice.
func (l *Loader) LoadDirTests(dir string) ([]*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	if pkgs, ok := l.testPkgs[abs]; ok {
		return pkgs, nil
	}
	path, err := l.importPath(abs)
	if err != nil {
		return nil, err
	}
	entries, err := os.ReadDir(abs)
	if err != nil {
		return nil, err
	}
	var testNames, regularNames []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") {
			continue
		}
		if strings.HasSuffix(name, "_test.go") {
			testNames = append(testNames, name)
		} else {
			regularNames = append(regularNames, name)
		}
	}
	if len(testNames) == 0 {
		l.testPkgs[abs] = nil
		return nil, nil
	}
	sort.Strings(testNames)
	sort.Strings(regularNames)

	// Parse test files and split them by package clause: in-package tests
	// merge with the regular sources; foo_test files form their own package.
	var inPkg, external []*ast.File
	basePkg := ""
	for _, name := range testNames {
		f, err := parser.ParseFile(l.Fset, filepath.Join(abs, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		if strings.HasSuffix(f.Name.Name, "_test") {
			external = append(external, f)
		} else {
			inPkg = append(inPkg, f)
			basePkg = f.Name.Name
		}
	}

	check := func(path string, files []*ast.File) (*Package, error) {
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		}
		conf := types.Config{Importer: l, FakeImportC: true}
		tpkg, err := conf.Check(path, l.Fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("typecheck %s: %w", path, err)
		}
		return &Package{Path: path, Dir: abs, Fset: l.Fset, Files: files, Types: tpkg, Info: info, TestFiles: true}, nil
	}

	var pkgs []*Package
	if len(inPkg) > 0 {
		files := append([]*ast.File(nil), inPkg...)
		for _, name := range regularNames {
			f, err := parser.ParseFile(l.Fset, filepath.Join(abs, name), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			if f.Name.Name != basePkg {
				return nil, fmt.Errorf("%s: test package %s does not match package %s", abs, basePkg, f.Name.Name)
			}
			files = append(files, f)
		}
		pkg, err := check(path, files)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	if len(external) > 0 {
		pkg, err := check(path+"_test", external)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	l.testPkgs[abs] = pkgs
	return pkgs, nil
}

// Import implements types.Importer, routing module-internal paths through
// the loader and everything else through the GOROOT source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == l.Module || strings.HasPrefix(path, l.Module+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.Module), "/")
		pkg, err := l.load(path, filepath.Join(l.Root, filepath.FromSlash(rel)))
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	if first, _, _ := strings.Cut(path, "/"); strings.Contains(first, ".") {
		return nil, fmt.Errorf("external dependency %s is not supported (module declares none)", path)
	}
	return l.std.Import(path)
}
