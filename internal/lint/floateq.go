package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// FloatEq protects the numeric-safety invariant that every floating-point
// comparison is a deliberate tolerance decision. Raw ==/!= between floats is
// almost always a latent bug — rounding residue from a different but
// mathematically equal evaluation order flips the result — so comparisons
// must go through the approved helpers in internal/mat and internal/core,
// whose bodies are the only sanctioned homes for the raw operators. Test
// files are exempt (the loader does not even parse them).
var FloatEq = &Analyzer{
	Name: "floateq",
	Doc:  "flags ==/!= between floating-point operands outside test files and the approved tolerance helpers",
	Run:  runFloatEq,
}

// floatEqApproved lists the functions (module-relative package path dot
// function name) whose bodies may use raw float equality: the tolerance and
// exactness helpers themselves. Everything else adopts them.
var floatEqApproved = map[string]bool{
	"internal/core.ExactEq":    true,
	"internal/core.IsZero":     true,
	"internal/core.IsIntegral": true,
	"internal/mat.ExactEq":     true,
	"internal/mat.IsZero":      true,
	"internal/mat.EqWithin":    true,
}

func runFloatEq(p *Pass) {
	pkgRel := modRelPath(p.Pkg.Path())
	for _, f := range p.Files {
		if strings.HasSuffix(p.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		eachFunc(f, func(decl *ast.FuncDecl, _ *ast.FuncType, body *ast.BlockStmt) {
			if decl != nil && floatEqApproved[pkgRel+"."+decl.Name.Name] {
				return
			}
			inspectShallow(body, func(n ast.Node) bool {
				bin, ok := n.(*ast.BinaryExpr)
				if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
					return true
				}
				if !isFloat(p.Info.TypeOf(bin.X)) && !isFloat(p.Info.TypeOf(bin.Y)) {
					return true
				}
				// Two constants fold at compile time; x != x is the NaN idiom.
				// Both are deterministic by construction.
				xc := p.Info.Types[bin.X].Value != nil
				yc := p.Info.Types[bin.Y].Value != nil
				if xc && yc {
					return true
				}
				if types.ExprString(bin.X) == types.ExprString(bin.Y) {
					return true
				}
				p.Reportf(bin.OpPos, "floating-point %s between %s and %s; use a tolerance helper (mat.EqWithin, core.ExactEq, core.IsIntegral)",
					bin.Op, types.ExprString(bin.X), types.ExprString(bin.Y))
				return true
			})
		})
	}
}
