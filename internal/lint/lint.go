// Package lint is a dependency-free static-analysis framework for this
// module, built entirely on the standard library's go/parser, go/ast and
// go/types (no golang.org/x/tools import — go.mod stays empty). It exists to
// move the pipeline's determinism and numeric-safety invariants from runtime
// checks (determinism_test.go, cmd/verify) into a compile-time gate: the
// runtime checks catch violations only on the inputs we happen to test,
// while the analyzers here refuse the source constructs that could violate
// them on any input.
//
// The four project-specific analyzers and the invariants they protect:
//
//   - maporder: byte-identical reports require no map-iteration order leaking
//     into output or returned slices.
//   - floateq: raw ==/!= on floats hides tolerance decisions; all float
//     comparisons go through the approved helpers in internal/mat and
//     internal/core.
//   - nondetsrc: the numeric core (internal/core, internal/mat, internal/par,
//     internal/report) must not read wall-clock time, unseeded randomness, or
//     race multiple ready channels.
//   - errsink: a silently discarded error can hide a short write or a failed
//     solve, producing a plausible but wrong report.
//
// See DESIGN.md §10 for the full rationale and TESTING.md for the allowlist
// workflow.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one named check over a typechecked package.
type Analyzer struct {
	// Name is the identifier used in diagnostics and allowlist entries.
	Name string
	// Doc is a one-line description shown by `lint -list`.
	Doc string
	// Scope, when non-nil, restricts the analyzer to packages for which it
	// returns true (matched against the package import path). A nil Scope
	// means every package.
	Scope func(pkgPath string) bool
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass)
}

// Pass carries one analyzer's view of one typechecked package.
type Pass struct {
	// Analyzer is the check being run.
	Analyzer *Analyzer
	// Fset resolves token positions for every file in the package.
	Fset *token.FileSet
	// Files are the package's parsed source files, in file-name order.
	Files []*ast.File
	// Pkg is the typechecked package.
	Pkg *types.Package
	// Info holds the type-checker's expression types and identifier uses.
	Info *types.Info

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding.
type Diagnostic struct {
	// Pos locates the offending construct (full position, including column;
	// the driver renders file:line).
	Pos token.Position
	// Analyzer names the check that fired.
	Analyzer string
	// Message explains the finding and the invariant it would break.
	Message string
}

// All returns the default analyzer set, sorted by name. The slice is freshly
// allocated; callers may filter it.
func All() []*Analyzer {
	as := []*Analyzer{
		ErrSink,
		FloatEq,
		MapOrder,
		NonDetSrc,
	}
	sort.Slice(as, func(i, j int) bool { return as[i].Name < as[j].Name })
	return as
}

// ByName returns the named subset of All, erroring on unknown names.
func ByName(names []string) ([]*Analyzer, error) {
	byName := make(map[string]*Analyzer)
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, name := range names {
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// Run applies every analyzer to every package and returns the findings
// sorted by position, then analyzer name, then message — a deterministic
// order regardless of package or analyzer scheduling.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if a.Scope != nil && !a.Scope(pkg.Path) {
				continue
			}
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				diags:    &diags,
			}
			a.Run(pass)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return diags
}
