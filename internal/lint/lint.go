// Package lint is a dependency-free static-analysis framework for this
// module, built entirely on the standard library's go/parser, go/ast and
// go/types (no golang.org/x/tools import — go.mod stays empty). It exists to
// move the pipeline's determinism and numeric-safety invariants from runtime
// checks (determinism_test.go, cmd/verify) into a compile-time gate: the
// runtime checks catch violations only on the inputs we happen to test,
// while the analyzers here refuse the source constructs that could violate
// them on any input.
//
// The eight project-specific analyzers and the invariants they protect:
//
//   - maporder: byte-identical reports require no map-iteration order leaking
//     into output or returned slices.
//   - floateq: raw ==/!= on floats hides tolerance decisions; all float
//     comparisons go through the approved helpers in internal/mat and
//     internal/core.
//   - nondetsrc: the numeric core (internal/core, internal/mat, internal/par,
//     internal/report) must not read wall-clock time, unseeded randomness, or
//     race multiple ready channels.
//   - errsink: a silently discarded error can hide a short write or a failed
//     solve, producing a plausible but wrong report.
//   - cachekey: every result-affecting field of a marked cache-key struct
//     must reach its canonical String()/Key() method, or carry a reasoned
//     lint:cachekey-exempt marker.
//   - goraw: fan-out happens through internal/par (or the server's sanctioned
//     pool), never via raw go statements or hand-rolled WaitGroups.
//   - lockbyvalue: sync primitives are never copied by value.
//   - seedcoord: random sources built under par.For/ForErr are seeded by
//     coordinates (parameters, struct fields), not shared state.
//
// See DESIGN.md §10 for the full rationale and TESTING.md for the allowlist
// workflow.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"github.com/perfmetrics/eventlens/internal/par"
)

// Analyzer is one named check over a typechecked package.
type Analyzer struct {
	// Name is the identifier used in diagnostics and allowlist entries.
	Name string
	// Doc is a one-line description shown by `lint -list`.
	Doc string
	// Scope, when non-nil, restricts the analyzer to packages for which it
	// returns true (matched against the package import path). A nil Scope
	// means every package.
	Scope func(pkgPath string) bool
	// TestFiles opts the analyzer into test-augmented packages (loaded via
	// LoadDirTests): its findings inside _test.go files are kept. Analyzers
	// without it never see test code.
	TestFiles bool
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass)
}

// Pass carries one analyzer's view of one typechecked package.
type Pass struct {
	// Analyzer is the check being run.
	Analyzer *Analyzer
	// Fset resolves token positions for every file in the package.
	Fset *token.FileSet
	// Files are the package's parsed source files, in file-name order.
	Files []*ast.File
	// Pkg is the typechecked package.
	Pkg *types.Package
	// Info holds the type-checker's expression types and identifier uses.
	Info *types.Info

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding.
type Diagnostic struct {
	// Pos locates the offending construct (full position, including column;
	// the driver renders file:line).
	Pos token.Position
	// Analyzer names the check that fired.
	Analyzer string
	// Message explains the finding and the invariant it would break.
	Message string
}

// All returns the default analyzer set, sorted by name. The slice is freshly
// allocated; callers may filter it.
func All() []*Analyzer {
	as := []*Analyzer{
		CacheKey,
		ErrSink,
		FloatEq,
		GoRaw,
		LockByValue,
		MapOrder,
		NonDetSrc,
		SeedCoord,
	}
	sort.Slice(as, func(i, j int) bool { return as[i].Name < as[j].Name })
	return as
}

// ByName returns the named subset of All, erroring on unknown names.
func ByName(names []string) ([]*Analyzer, error) {
	byName := make(map[string]*Analyzer)
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, name := range names {
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// Run applies every analyzer to every package and returns the findings
// sorted by position, then analyzer name, then message — a deterministic
// order regardless of package or analyzer scheduling. It fans the
// (package, analyzer) pairs out through the module's own worker pool;
// Workers(0) semantics apply (GOMAXPROCS).
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	return RunWorkers(pkgs, analyzers, 0)
}

// RunWorkers is Run with an explicit worker bound. Each (package, analyzer)
// pair is an independent read-only pass over the shared typecheck results,
// writing to its own diagnostic slice; assembly and sorting afterwards make
// the output order independent of scheduling. Test-augmented packages
// (Package.TestFiles) run only TestFiles analyzers, and keep only the
// findings located in _test.go files — the non-test files were already
// covered by the regular package.
func RunWorkers(pkgs []*Package, analyzers []*Analyzer, workers int) []Diagnostic {
	type task struct {
		pkg *Package
		a   *Analyzer
	}
	var tasks []task
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if pkg.TestFiles && !a.TestFiles {
				continue
			}
			if a.Scope != nil && !a.Scope(pkg.Path) {
				continue
			}
			tasks = append(tasks, task{pkg: pkg, a: a})
		}
	}
	results := make([][]Diagnostic, len(tasks))
	if err := par.ForErr(workers, len(tasks), func(i int) error {
		var out []Diagnostic
		t := tasks[i]
		t.a.Run(&Pass{
			Analyzer: t.a,
			Fset:     t.pkg.Fset,
			Files:    t.pkg.Files,
			Pkg:      t.pkg.Types,
			Info:     t.pkg.Info,
			diags:    &out,
		})
		if t.pkg.TestFiles {
			kept := out[:0]
			for _, d := range out {
				if strings.HasSuffix(d.Pos.Filename, "_test.go") {
					kept = append(kept, d)
				}
			}
			out = kept
		}
		results[i] = out
		return nil
	}); err != nil {
		// The only possible error is a contained analyzer panic; re-raise it
		// so a broken analyzer cannot masquerade as a clean run.
		panic(err)
	}
	var diags []Diagnostic
	for _, r := range results {
		diags = append(diags, r...)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	// A construct can be reached twice by one analyzer (seedcoord checks a
	// nested par body both as an entry and through its enclosing function);
	// identical findings collapse to one.
	out := diags[:0]
	for i, d := range diags {
		if i == 0 || d != diags[i-1] {
			out = append(out, d)
		}
	}
	return out
}
