package lint

import (
	"path/filepath"
	"strings"
	"testing"
)

// analyzeModule loads one package of a multi-file synthetic module and runs
// the given analyzers over it. files maps module-relative paths to source
// text; relDir names the package under test. Unlike analyze, this lets a
// test materialize helper packages (a stand-in internal/par, say) that the
// package under test imports.
func analyzeModule(t *testing.T, files map[string]string, relDir string, as ...*Analyzer) []Diagnostic {
	t.Helper()
	root := writeModule(t, files)
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir(filepath.Join(root, filepath.FromSlash(relDir)))
	if err != nil {
		t.Fatal(err)
	}
	return Run([]*Package{pkg}, as)
}

func TestCacheKeyFlagsMissingField(t *testing.T) {
	src := `package p

import "fmt"

// Config is cache-keyed.
//
// lint:cachekey
type Config struct {
	Tau     float64
	Retries int // line 10: flagged, never reaches String
	// lint:cachekey-exempt cannot change results
	Workers int
}

func (c Config) String() string { return fmt.Sprintf("tau=%g", c.Tau) }
`
	diags := analyze(t, "p", src, CacheKey)
	expect(t, diags, [2]int{0, 10})
}

// TestCacheKeyTransitiveReference pins the closure walk: a field rendered by
// a helper the canonical method calls counts as reaching the key.
func TestCacheKeyTransitiveReference(t *testing.T) {
	src := `package p

import "fmt"

// lint:cachekey
type Config struct {
	Tau   float64
	Alpha float64
}

func (c Config) String() string { return c.render() }

func (c Config) render() string { return fmt.Sprintf("tau=%g,alpha=%g", c.Tau, c.Alpha) }
`
	expect(t, analyze(t, "p", src, CacheKey))
}

func TestCacheKeyExemptNeedsReason(t *testing.T) {
	src := `package p

import "fmt"

// lint:cachekey
type Config struct {
	Tau float64
	// lint:cachekey-exempt
	Workers int // bare exemption flagged
}

func (c Config) String() string { return fmt.Sprintf("tau=%g", c.Tau) }
`
	diags := analyze(t, "p", src, CacheKey)
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "needs a reason") {
		t.Fatalf("diags = %v, want one bare-exemption finding", diags)
	}
}

func TestCacheKeyRequiresCanonicalMethod(t *testing.T) {
	src := `package p

// lint:cachekey
type Config struct {
	Tau float64
}
`
	diags := analyze(t, "p", src, CacheKey)
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "no String() or Key() method") {
		t.Fatalf("diags = %v, want a missing-method finding", diags)
	}
}

func TestCacheKeyUnmarkedStructIgnored(t *testing.T) {
	src := `package p

type Config struct {
	Tau     float64
	Retries int
}

func (c Config) String() string { return "x" }
`
	expect(t, analyze(t, "p", src, CacheKey))
}

func TestGoRawFlagsOutsideSanctionedPackages(t *testing.T) {
	src := `package p

import "sync"

func Fire(done chan struct{}) {
	go func() { done <- struct{}{} }() // line 6: flagged, raw go
}

func FanOut(n int) {
	var wg sync.WaitGroup // line 10: flagged, WaitGroup decl
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() { wg.Done() }() // line 13: flagged, go in a loop
	}
	wg.Wait()
}
`
	diags := analyze(t, "p", src, GoRaw)
	expect(t, diags, [2]int{0, 6}, [2]int{0, 10}, [2]int{0, 13})
	if !strings.Contains(diags[2].Message, "fan-out in a loop") {
		t.Errorf("loop go message = %q, want the fan-out variant", diags[2].Message)
	}
}

// TestGoRawScope pins the sanctioned packages: internal/par and
// internal/server own their goroutines.
func TestGoRawScope(t *testing.T) {
	src := `package par

import "sync"

func For(n int, fn func(int)) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) { defer wg.Done(); fn(i) }(i)
	}
	wg.Wait()
}
`
	expect(t, analyze(t, "internal/par", src, GoRaw))
}

func TestLockByValueCopies(t *testing.T) {
	src := `package p

import "sync"

type Counter struct {
	mu sync.Mutex
	n  int
}

func (c Counter) Value() int { // line 10: flagged, value receiver
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

func (c *Counter) Inc() { // ok: pointer receiver
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

func Copies(a Counter, s []Counter) {
	b := a // line 23: flagged, assignment copies the lock
	_ = b
	for _, c := range s { // line 25: flagged, range copies per iteration
		_ = c
	}
	p := &a // ok: pointer share
	_ = p
}
`
	diags := analyze(t, "p", src, LockByValue)
	expect(t, diags, [2]int{0, 10}, [2]int{0, 23}, [2]int{0, 25})
}

func TestLockByValueVarDecl(t *testing.T) {
	src := `package p

import "sync"

func Decl(mu sync.Mutex) {
	var cp = mu // line 6: flagged
	_ = cp
	var fresh sync.Mutex // ok: zero-value initialization
	_ = fresh
}
`
	diags := analyze(t, "p", src, LockByValue)
	expect(t, diags, [2]int{0, 6})
}

// parStub is a minimal internal/par stand-in for seedcoord tests; the
// analyzer matches the callee's package path suffix, not the module.
const parStub = `package par

func For(workers, n int, fn func(int)) {
	for i := 0; i < n; i++ {
		fn(i)
	}
}
`

func TestSeedCoordFlagsConstantSeed(t *testing.T) {
	app := `package app

import (
	"math/rand"

	"example.com/fixture/internal/par"
)

func Fill(out []float64) {
	par.For(0, len(out), func(i int) {
		src := rand.NewSource(42) // line 11: flagged, seed ignores i
		out[i] = float64(src.Int63())
	})
}
`
	diags := analyzeModule(t, map[string]string{
		"internal/par/par.go": parStub,
		"app/app.go":          app,
	}, "app", SeedCoord)
	expect(t, diags, [2]int{0, 11})
}

func TestSeedCoordAcceptsCoordinateSeeds(t *testing.T) {
	app := `package app

import (
	"math/rand"

	"example.com/fixture/internal/par"
)

type job struct{ seed int64 }

// Parameter-derived seed: each task mixes its index in.
func Fill(out []float64, base int64) {
	par.For(0, len(out), func(i int) {
		src := rand.NewSource(base + int64(i))
		out[i] = float64(src.Int63())
	})
}

// Struct-field seed through a reached method.
func (j job) run(i int) float64 {
	src := rand.NewSource(j.seed + int64(i))
	return float64(src.Int63())
}

func FillJobs(out []float64, j job) {
	par.For(0, len(out), func(i int) {
		out[i] = j.run(i)
	})
}

// Derived local: tainted through an assignment chain.
func FillDerived(out []float64) {
	par.For(0, len(out), func(i int) {
		coord := int64(i) * 1000003
		src := rand.NewSource(coord)
		out[i] = float64(src.Int63())
	})
}
`
	diags := analyzeModule(t, map[string]string{
		"internal/par/par.go": parStub,
		"app/app.go":          app,
	}, "app", SeedCoord)
	expect(t, diags)
}

// TestSeedCoordReachedFunction pins the closure walk: a named function the
// par body calls is checked too, with its parameters as the coordinates.
func TestSeedCoordReachedFunction(t *testing.T) {
	app := `package app

import (
	"math/rand"

	"example.com/fixture/internal/par"
)

func task(i int) float64 {
	src := rand.NewSource(7) // line 10: flagged, constant seed in reached fn
	return float64(src.Int63()) + float64(i)
}

func Fill(out []float64) {
	par.For(0, len(out), func(i int) {
		out[i] = task(i)
	})
}

// Outside any par fan-out the same construction is fine (nondetsrc owns
// unseeded sources; seedcoord only polices fan-out coordination).
func Serial() float64 {
	src := rand.NewSource(7)
	return float64(src.Int63())
}
`
	diags := analyzeModule(t, map[string]string{
		"internal/par/par.go": parStub,
		"app/app.go":          app,
	}, "app", SeedCoord)
	expect(t, diags, [2]int{0, 10})
}
