package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// SeedCoord is a local dataflow check on the coordinate-seeding contract:
// the Workers=1-vs-N byte-identity proof rests on every random source
// constructed under a par.For/par.ForErr body being seeded purely by its
// coordinates. A source seeded from a loop-invariant local or package state
// gives every task the same stream (plausible data, silently wrong
// statistics) — and if the source is instead shared, a data race. The
// analyzer walks every function reachable from a par.For/ForErr body within
// the package and requires each seed expression to derive from the enclosing
// function's parameters (the coordinates flow in as arguments) or from
// struct fields (plans and configs carry per-task seeds), tracked through
// local assignment chains.
var SeedCoord = &Analyzer{
	Name: "seedcoord",
	Doc:  "checks random sources built under par.For/ForErr derive their seeds from parameters or struct fields (coordinates), not shared or loop-invariant state",
	Run:  runSeedCoord,
}

// seedConstructors are the seed-accepting source constructors:
// (package-path suffix, function name) pairs. The module's own splitmix
// generator (machine.newRNG) joins the stdlib ones; suffix matching lets
// fixture packages mirror it.
var seedConstructors = [][2]string{
	{"math/rand", "NewSource"},
	{"math/rand/v2", "NewPCG"},
	{"math/rand/v2", "NewChaCha8"},
	{"internal/machine", "newRNG"},
}

// isSeedConstructor reports whether fn constructs a random source directly
// from seed arguments.
func isSeedConstructor(fn *types.Func) bool {
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	path := fn.Pkg().Path()
	for _, key := range seedConstructors {
		if fn.Name() == key[1] && (path == key[0] || strings.HasSuffix(modRelPath(path), key[0])) {
			return true
		}
	}
	return false
}

// isParFan reports whether fn is par.For or par.ForErr (matched by path
// suffix so fixtures can mirror internal/par).
func isParFan(fn *types.Func) bool {
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	if fn.Name() != "For" && fn.Name() != "ForErr" {
		return false
	}
	return strings.HasSuffix(modRelPath(fn.Pkg().Path()), "internal/par")
}

func runSeedCoord(p *Pass) {
	decls := packageFuncDecls(p)

	// Phase 1: find every par fan-out body — function literals get their
	// captured enclosing parameters as coordinates too — and every package
	// function referenced as the body directly.
	type entry struct {
		body    *ast.BlockStmt
		tainted map[types.Object]bool
	}
	var entries []entry
	reached := make(map[*ast.FuncDecl]bool)
	for _, f := range p.Files {
		var fnStack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				fnStack = fnStack[:len(fnStack)-1]
				return true
			}
			if call, ok := n.(*ast.CallExpr); ok && len(call.Args) > 0 {
				if isParFan(calleeFunc(p.Info, call)) {
					body := call.Args[len(call.Args)-1]
					switch body := ast.Unparen(body).(type) {
					case *ast.FuncLit:
						tainted := make(map[types.Object]bool)
						paramObjs(p, body.Type, tainted)
						for _, outer := range fnStack {
							switch outer := outer.(type) {
							case *ast.FuncDecl:
								paramObjs(p, outer.Type, tainted)
								if outer.Recv != nil {
									fieldObjsFromRecv(p, outer.Recv, tainted)
								}
							case *ast.FuncLit:
								paramObjs(p, outer.Type, tainted)
							}
						}
						entries = append(entries, entry{body: body.Body, tainted: tainted})
					case *ast.Ident, *ast.SelectorExpr:
						if fn := calleeFuncExpr(p.Info, body); fn != nil {
							if fd, ok := decls[fn]; ok {
								reached[fd] = true
							}
						}
					}
				}
			}
			switch n.(type) {
			case *ast.FuncDecl, *ast.FuncLit:
				fnStack = append(fnStack, n)
			default:
				fnStack = append(fnStack, nil)
			}
			return true
		})
	}

	// Phase 2: expand reachability through same-package calls, from both the
	// literal bodies and the directly-referenced functions.
	var queue []*ast.FuncDecl
	collectCallees := func(body ast.Node) {
		ast.Inspect(body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if fn := calleeFunc(p.Info, call); fn != nil {
					if fd, ok := decls[fn]; ok && !reached[fd] {
						reached[fd] = true
						queue = append(queue, fd)
					}
				}
			}
			return true
		})
	}
	for _, e := range entries {
		collectCallees(e.body)
	}
	for fd := range reached {
		queue = append(queue, fd)
	}
	for len(queue) > 0 {
		fd := queue[0]
		queue = queue[1:]
		collectCallees(fd.Body)
	}

	// Phase 3: check every entry body and reached function. Reached
	// functions taint their own parameters and receiver: the coordinates
	// arrive as arguments, so deriving from parameters is deriving from
	// coordinates.
	for _, e := range entries {
		checkSeedBody(p, e.body, e.tainted)
	}
	sorted := make([]*ast.FuncDecl, 0, len(reached))
	for fd := range reached {
		sorted = append(sorted, fd)
	}
	// Map order does not matter: checkSeedBody only appends diagnostics,
	// which the runner sorts by position.
	for _, fd := range sorted {
		tainted := make(map[types.Object]bool)
		paramObjs(p, fd.Type, tainted)
		if fd.Recv != nil {
			fieldObjsFromRecv(p, fd.Recv, tainted)
		}
		checkSeedBody(p, fd.Body, tainted)
	}
}

// calleeFuncExpr resolves a function-valued expression (an identifier or
// method selector passed as the fan-out body) to its *types.Func.
func calleeFuncExpr(info *types.Info, e ast.Expr) *types.Func {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[e].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[e.Sel].(*types.Func)
		return fn
	}
	return nil
}

// paramObjs adds a function type's parameter objects to the tainted set.
func paramObjs(p *Pass, ftype *ast.FuncType, tainted map[types.Object]bool) {
	if ftype.Params == nil {
		return
	}
	for _, field := range ftype.Params.List {
		for _, name := range field.Names {
			if obj := p.Info.Defs[name]; obj != nil {
				tainted[obj] = true
			}
		}
	}
}

// fieldObjsFromRecv taints the receiver object so r.someSeedField counts as
// coordinate-derived (field selections are independently accepted anyway).
func fieldObjsFromRecv(p *Pass, recv *ast.FieldList, tainted map[types.Object]bool) {
	for _, field := range recv.List {
		for _, name := range field.Names {
			if obj := p.Info.Defs[name]; obj != nil {
				tainted[obj] = true
			}
		}
	}
}

// checkSeedBody propagates taint through local assignments to a fixpoint,
// then requires every seed-constructor argument to be coordinate-derived.
func checkSeedBody(p *Pass, body *ast.BlockStmt, tainted map[types.Object]bool) {
	// Parameters of nested function literals are function parameters too —
	// a par body nested inside a reached function carries its coordinate in
	// its own parameter list.
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			paramObjs(p, lit.Type, tainted)
		}
		return true
	})
	// Fixpoint taint propagation over local assignment chains: a local
	// assigned from coordinate-derived material is itself coordinate-derived.
	for changed := true; changed; {
		changed = false
		ast.Inspect(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					id, ok := ast.Unparen(lhs).(*ast.Ident)
					if !ok {
						continue
					}
					obj := p.Info.Defs[id]
					if obj == nil {
						obj = p.Info.Uses[id]
					}
					if obj == nil || tainted[obj] {
						continue
					}
					rhs := n.Rhs[0]
					if len(n.Rhs) == len(n.Lhs) {
						rhs = n.Rhs[i]
					}
					if coordDerived(p, rhs, tainted) {
						tainted[obj] = true
						changed = true
					}
				}
			case *ast.ValueSpec:
				for i, name := range n.Names {
					obj := p.Info.Defs[name]
					if obj == nil || tainted[obj] || len(n.Values) == 0 {
						continue
					}
					v := n.Values[0]
					if len(n.Values) == len(n.Names) {
						v = n.Values[i]
					}
					if coordDerived(p, v, tainted) {
						tainted[obj] = true
						changed = true
					}
				}
			}
			return true
		})
	}

	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isSeedConstructor(calleeFunc(p.Info, call)) {
			return true
		}
		for _, arg := range call.Args {
			if coordDerived(p, arg, tainted) {
				return true
			}
		}
		fn := calleeFunc(p.Info, call)
		p.Reportf(call.Lparen, "%s.%s under par.For/ForErr is not coordinate-seeded: derive the seed from a parameter or struct field so every task gets its own stream",
			fn.Pkg().Name(), fn.Name())
		return true
	})
}

// coordDerived reports whether an expression's value depends on a tainted
// identifier or a struct-field selection — the two sanctioned coordinate
// sources.
func coordDerived(p *Pass, e ast.Expr, tainted map[types.Object]bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.Ident:
			if obj := p.Info.Uses[n]; obj != nil && tainted[obj] {
				found = true
				return false
			}
		case *ast.SelectorExpr:
			if sel, ok := p.Info.Selections[n]; ok && sel.Kind() == types.FieldVal {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
