package lint

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestLoadAllResolvesModuleImports builds a two-package module where one
// package imports the other, and checks both load, typecheck and come back
// in import-path order.
func TestLoadAllResolvesModuleImports(t *testing.T) {
	root := writeModule(t, map[string]string{
		"lib/lib.go": "package lib\n\nfunc Answer() int { return 42 }\n",
		"app/app.go": "package app\n\nimport \"example.com/fixture/lib\"\n\nfunc Run() int { return lib.Answer() }\n",
	})
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("loaded %d packages, want 2", len(pkgs))
	}
	if pkgs[0].Path != "example.com/fixture/app" || pkgs[1].Path != "example.com/fixture/lib" {
		t.Errorf("paths = %s, %s; want app then lib", pkgs[0].Path, pkgs[1].Path)
	}
}

func TestLoadAllSkipsTestdataAndHidden(t *testing.T) {
	root := writeModule(t, map[string]string{
		"p/p.go":                "package p\n",
		"p/testdata/bad/bad.go": "package bad\n\nfunc Broken() { undefined() }\n",
		"_wip/w.go":             "package w\n\nfunc Broken() { undefined() }\n",
	})
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 || pkgs[0].Path != "example.com/fixture/p" {
		t.Errorf("pkgs = %v, want only p", pkgs)
	}
}

func TestLoadDirRejectsExternalDeps(t *testing.T) {
	root := writeModule(t, map[string]string{
		"p/p.go": "package p\n\nimport _ \"github.com/nope/dep\"\n",
	})
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	_, err = loader.LoadDir(filepath.Join(root, "p"))
	if err == nil || !strings.Contains(err.Error(), "external dependency") {
		t.Errorf("err = %v, want external-dependency rejection", err)
	}
}

func TestLoadDirOutsideModule(t *testing.T) {
	root := writeModule(t, map[string]string{"p/p.go": "package p\n"})
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := loader.LoadDir(t.TempDir()); err == nil {
		t.Error("loading a directory outside the module root did not fail")
	}
}

// TestLoadDirTests pins the test-file views: in-package _test.go files merge
// with the regular sources into one TestFiles package, external _test
// packages load separately, and neither leaks into the base package cache.
func TestLoadDirTests(t *testing.T) {
	root := writeModule(t, map[string]string{
		"p/p.go":        "package p\n\nfunc Answer() int { return 42 }\n",
		"p/p_test.go":   "package p\n\nimport \"testing\"\n\nfunc TestAnswer(t *testing.T) { _ = Answer() }\n",
		"p/ext_test.go": "package p_test\n\nimport (\n\t\"testing\"\n\n\t\"example.com/fixture/p\"\n)\n\nfunc TestExt(t *testing.T) { _ = p.Answer() }\n",
		"q/q.go":        "package q\n",
		"app/app.go":    "package app\n\nimport \"example.com/fixture/p\"\n\nfunc Run() int { return p.Answer() }\n",
	})
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadDirTests(filepath.Join(root, "p"))
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("got %d test packages, want in-package + external", len(pkgs))
	}
	for _, pkg := range pkgs {
		if !pkg.TestFiles {
			t.Errorf("package %s not flagged TestFiles", pkg.Path)
		}
	}
	if pkgs[0].Path != "example.com/fixture/p" || len(pkgs[0].Files) != 2 {
		t.Errorf("in-package view = %s with %d files, want p with source+test", pkgs[0].Path, len(pkgs[0].Files))
	}
	if pkgs[1].Path != "example.com/fixture/p_test" {
		t.Errorf("external view = %s, want p_test", pkgs[1].Path)
	}
	// A dir with no test files yields nothing.
	none, err := loader.LoadDirTests(filepath.Join(root, "q"))
	if err != nil || none != nil {
		t.Errorf("no-test dir: pkgs = %v, err = %v; want nil, nil", none, err)
	}
	// The base package view stays test-free: an importer must not see the
	// test-augmented package.
	app, err := loader.LoadDir(filepath.Join(root, "app"))
	if err != nil {
		t.Fatal(err)
	}
	if app.TestFiles {
		t.Error("importing package inherited TestFiles")
	}
}

func TestFindRoot(t *testing.T) {
	root := writeModule(t, map[string]string{"a/b/c.go": "package b\n"})
	got, err := FindRoot(filepath.Join(root, "a", "b"))
	if err != nil || got != root {
		t.Errorf("FindRoot = %q, %v; want %q", got, err, root)
	}
}

func TestModulePathParse(t *testing.T) {
	root := writeModule(t, map[string]string{"p/p.go": "package p\n"})
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	if loader.Module != "example.com/fixture" {
		t.Errorf("Module = %q", loader.Module)
	}
}
