package lint

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestLoadAllResolvesModuleImports builds a two-package module where one
// package imports the other, and checks both load, typecheck and come back
// in import-path order.
func TestLoadAllResolvesModuleImports(t *testing.T) {
	root := writeModule(t, map[string]string{
		"lib/lib.go": "package lib\n\nfunc Answer() int { return 42 }\n",
		"app/app.go": "package app\n\nimport \"example.com/fixture/lib\"\n\nfunc Run() int { return lib.Answer() }\n",
	})
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("loaded %d packages, want 2", len(pkgs))
	}
	if pkgs[0].Path != "example.com/fixture/app" || pkgs[1].Path != "example.com/fixture/lib" {
		t.Errorf("paths = %s, %s; want app then lib", pkgs[0].Path, pkgs[1].Path)
	}
}

func TestLoadAllSkipsTestdataAndHidden(t *testing.T) {
	root := writeModule(t, map[string]string{
		"p/p.go":                "package p\n",
		"p/testdata/bad/bad.go": "package bad\n\nfunc Broken() { undefined() }\n",
		"_wip/w.go":             "package w\n\nfunc Broken() { undefined() }\n",
	})
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 || pkgs[0].Path != "example.com/fixture/p" {
		t.Errorf("pkgs = %v, want only p", pkgs)
	}
}

func TestLoadDirRejectsExternalDeps(t *testing.T) {
	root := writeModule(t, map[string]string{
		"p/p.go": "package p\n\nimport _ \"github.com/nope/dep\"\n",
	})
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	_, err = loader.LoadDir(filepath.Join(root, "p"))
	if err == nil || !strings.Contains(err.Error(), "external dependency") {
		t.Errorf("err = %v, want external-dependency rejection", err)
	}
}

func TestLoadDirOutsideModule(t *testing.T) {
	root := writeModule(t, map[string]string{"p/p.go": "package p\n"})
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := loader.LoadDir(t.TempDir()); err == nil {
		t.Error("loading a directory outside the module root did not fail")
	}
}

func TestFindRoot(t *testing.T) {
	root := writeModule(t, map[string]string{"a/b/c.go": "package b\n"})
	got, err := FindRoot(filepath.Join(root, "a", "b"))
	if err != nil || got != root {
		t.Errorf("FindRoot = %q, %v; want %q", got, err, root)
	}
}

func TestModulePathParse(t *testing.T) {
	root := writeModule(t, map[string]string{"p/p.go": "package p\n"})
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	if loader.Module != "example.com/fixture" {
		t.Errorf("Module = %q", loader.Module)
	}
}
