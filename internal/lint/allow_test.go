package lint

import (
	"go/token"
	"strings"
	"testing"
)

func TestParseAllow(t *testing.T) {
	content := `# header comment

floateq internal/core/x.go:12   # tolerated residue check
errsink cmd/serve/main.go:7     # best-effort cleanup on shutdown
`
	al, err := ParseAllow("lint.allow", content)
	if err != nil {
		t.Fatal(err)
	}
	if len(al.Entries) != 2 {
		t.Fatalf("got %d entries, want 2", len(al.Entries))
	}
	e := al.Entries[0]
	if e.Analyzer != "floateq" || e.File != "internal/core/x.go" || e.Line != 12 ||
		e.Reason != "tolerated residue check" || e.SourceLine != 3 {
		t.Errorf("entry 0 = %+v", e)
	}
	e = al.Entries[1]
	if e.Analyzer != "errsink" || e.File != "cmd/serve/main.go" || e.Line != 7 ||
		e.Reason != "best-effort cleanup on shutdown" || e.SourceLine != 4 {
		t.Errorf("entry 1 = %+v", e)
	}
}

func TestParseAllowErrors(t *testing.T) {
	cases := []struct {
		name, content, wantErr string
	}{
		{"missing location", "floateq\n", "lint.allow:1"},
		{"too many fields", "floateq a.go:1 extra\n", "lint.allow:1"},
		{"no line number", "floateq a.go\n", "not <file>:<line>"},
		{"bad line number", "floateq a.go:zero\n", "bad line number"},
		{"zero line number", "floateq a.go:0\n", "bad line number"},
		{"absolute path", "floateq /tmp/a.go:3\n", "relative to the module root"},
		{"escaping path", "floateq ../a.go:3\n", "relative to the module root"},
		{"missing reason", "floateq a.go:3\n", "must carry a '# reason'"},
		{"blank reason", "floateq a.go:3   #\n", "must carry a '# reason'"},
	}
	for _, tc := range cases {
		_, err := ParseAllow("lint.allow", tc.content)
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: err = %v, want containing %q", tc.name, err, tc.wantErr)
		}
	}
}

func TestAllowFilterAndStale(t *testing.T) {
	al, err := ParseAllow("lint.allow", `
floateq internal/core/x.go:12 # residue check
errsink cmd/serve/main.go:7   # never matches -> stale
`)
	if err != nil {
		t.Fatal(err)
	}
	diags := []Diagnostic{
		{Pos: token.Position{Filename: "/mod/internal/core/x.go", Line: 12}, Analyzer: "floateq", Message: "a"},
		{Pos: token.Position{Filename: "/mod/internal/core/x.go", Line: 13}, Analyzer: "floateq", Message: "b"},
	}
	rel := func(f string) string { return strings.TrimPrefix(f, "/mod/") }
	kept, stale := al.Filter(diags, rel)
	if len(kept) != 1 || kept[0].Pos.Line != 13 {
		t.Errorf("kept = %v, want only line 13", kept)
	}
	if len(stale) != 1 || stale[0].Analyzer != "errsink" || stale[0].SourceLine != 3 {
		t.Errorf("stale = %+v, want the errsink entry from source line 3", stale)
	}
}

func TestAllowFilterNoList(t *testing.T) {
	al := &Allowlist{}
	diags := []Diagnostic{{Pos: token.Position{Filename: "x.go", Line: 1}, Analyzer: "floateq"}}
	kept, stale := al.Filter(diags, func(s string) string { return s })
	if len(kept) != 1 || len(stale) != 0 {
		t.Errorf("empty allowlist: kept %d stale %d, want 1 and 0", len(kept), len(stale))
	}
}
