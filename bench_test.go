// Benchmark harness: one testing.B benchmark per table and figure of the
// paper, plus ablations of the design choices called out in DESIGN.md.
//
// Tables I-IV are signature/basis constructions; Tables V-VIII run the
// metric-definition stage against pre-collected measurements; Figures 2a-2d
// run the noise analysis; Figure 3 evaluates the cache combinations. The
// Collect* benchmarks measure raw data collection on the simulated
// platforms, and the QRCPAblation benchmarks compare the paper's specialized
// pivoting against classical largest-norm pivoting on the same input.
package eventlens_test

import (
	"testing"

	"github.com/perfmetrics/eventlens"
	"github.com/perfmetrics/eventlens/internal/cat"
	"github.com/perfmetrics/eventlens/internal/core"
	"github.com/perfmetrics/eventlens/internal/mat"
	"github.com/perfmetrics/eventlens/internal/suite"
)

// collected caches one measurement set + analysis per benchmark so that
// table/figure benchmarks measure the analysis stages, not re-collection.
type collected struct {
	bench suite.Benchmark
	set   *core.MeasurementSet
	basis *core.Basis
	res   *core.Result
}

var collectedCache = map[string]*collected{}

func collect(b *testing.B, name string) *collected {
	b.Helper()
	if c, ok := collectedCache[name]; ok {
		return c
	}
	bench, err := suite.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	platform, err := bench.NewPlatform()
	if err != nil {
		b.Fatal(err)
	}
	set, err := bench.Run(platform, cat.RunConfig(bench.DefaultRun))
	if err != nil {
		b.Fatal(err)
	}
	basis, err := bench.Basis()
	if err != nil {
		b.Fatal(err)
	}
	pipe := &core.Pipeline{Basis: basis, Config: bench.Config}
	res, err := pipe.Analyze(set)
	if err != nil {
		b.Fatal(err)
	}
	c := &collected{bench: bench, set: set, basis: basis, res: res}
	collectedCache[name] = c
	return c
}

// benchSignatureTable regenerates one signature table (Tables I-IV): basis
// construction, signature validation and rendering.
func benchSignatureTable(b *testing.B, name string) {
	bench, err := suite.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		basis, err := bench.Basis()
		if err != nil {
			b.Fatal(err)
		}
		for _, sig := range bench.Signatures {
			if err := sig.Validate(basis); err != nil {
				b.Fatal(err)
			}
		}
		_ = core.FormatSignatureTable("bench", bench.BasisSymbols, bench.Signatures)
	}
}

func BenchmarkTableI_CPUFlopsSignatures(b *testing.B)  { benchSignatureTable(b, "cpu-flops") }
func BenchmarkTableII_GPUFlopsSignatures(b *testing.B) { benchSignatureTable(b, "gpu-flops") }
func BenchmarkTableIII_BranchSignatures(b *testing.B)  { benchSignatureTable(b, "branch") }
func BenchmarkTableIV_CacheSignatures(b *testing.B)    { benchSignatureTable(b, "dcache") }

// benchMetricTable regenerates one metric table (Tables V-VIII): the full
// analysis pipeline plus least-squares metric definitions, against cached
// measurements.
func benchMetricTable(b *testing.B, name string) {
	c := collect(b, name)
	pipe := &core.Pipeline{Basis: c.basis, Config: c.bench.Config}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := pipe.Analyze(c.set)
		if err != nil {
			b.Fatal(err)
		}
		defs, err := res.DefineMetrics(c.bench.Signatures)
		if err != nil {
			b.Fatal(err)
		}
		if len(defs) != len(c.bench.Signatures) {
			b.Fatal("missing definitions")
		}
	}
}

func BenchmarkTableV_CPUFlopsMetrics(b *testing.B)  { benchMetricTable(b, "cpu-flops") }
func BenchmarkTableVI_GPUFlopsMetrics(b *testing.B) { benchMetricTable(b, "gpu-flops") }
func BenchmarkTableVII_BranchMetrics(b *testing.B)  { benchMetricTable(b, "branch") }
func BenchmarkTableVIII_CacheMetrics(b *testing.B)  { benchMetricTable(b, "dcache") }

// benchFigure2 regenerates one variability figure: the max-RNMSE noise
// analysis over all events, plus the sort.
func benchFigure2(b *testing.B, name string) {
	c := collect(b, name)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		report := core.FilterNoise(c.set, c.bench.Config.Tau)
		if len(report.SortedVariabilities()) == 0 {
			b.Fatal("no variabilities")
		}
	}
}

func BenchmarkFigure2a_BranchVariability(b *testing.B)   { benchFigure2(b, "branch") }
func BenchmarkFigure2b_CPUFlopsVariability(b *testing.B) { benchFigure2(b, "cpu-flops") }
func BenchmarkFigure2c_GPUFlopsVariability(b *testing.B) { benchFigure2(b, "gpu-flops") }
func BenchmarkFigure2d_CacheVariability(b *testing.B)    { benchFigure2(b, "dcache") }

// BenchmarkFigure3_CacheApproximations evaluates every cache metric's
// rounded raw-event combination across the sweep and compares it to the
// expanded signature — the computation behind the six panels of Figure 3.
func BenchmarkFigure3_CacheApproximations(b *testing.B) {
	c := collect(b, "dcache")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, sig := range core.CacheSignatures() {
			def, err := c.res.DefineMetric(sig)
			if err != nil {
				b.Fatal(err)
			}
			rounded := def.Rounded(c.bench.Config.RoundTol)
			combo, err := rounded.Combine(c.res.Noise.Kept)
			if err != nil {
				b.Fatal(err)
			}
			want, err := c.basis.Expand(sig.Coeffs)
			if err != nil {
				b.Fatal(err)
			}
			if len(combo) != len(want) {
				b.Fatal("length mismatch")
			}
		}
	}
}

// Collection benchmarks: the cost of running each CAT benchmark on its
// simulated platform and measuring the full catalog.
func benchCollect(b *testing.B, name string) {
	bench, err := suite.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	platform, err := bench.NewPlatform()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bench.Run(platform, cat.RunConfig(bench.DefaultRun)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCollectCPUFlops(b *testing.B) { benchCollect(b, "cpu-flops") }
func BenchmarkCollectGPUFlops(b *testing.B) { benchCollect(b, "gpu-flops") }
func BenchmarkCollectBranch(b *testing.B)   { benchCollect(b, "branch") }
func BenchmarkCollectDCache(b *testing.B)   { benchCollect(b, "dcache") }

// Serial vs Parallel pairs: the same stage pinned to Workers=1 and to
// Workers=GOMAXPROCS. Outputs are byte-identical (determinism_test.go); these
// pairs exist to measure what the worker pool buys on each stage.

func benchCollectWorkers(b *testing.B, name string, workers int) {
	bench, err := suite.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	platform, err := bench.NewPlatform()
	if err != nil {
		b.Fatal(err)
	}
	run := bench.DefaultRun
	run.Workers = workers
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bench.Run(platform, run); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCollectSerialCPUFlops(b *testing.B)   { benchCollectWorkers(b, "cpu-flops", 1) }
func BenchmarkCollectParallelCPUFlops(b *testing.B) { benchCollectWorkers(b, "cpu-flops", 0) }
func BenchmarkCollectSerialDCache(b *testing.B)     { benchCollectWorkers(b, "dcache", 1) }
func BenchmarkCollectParallelDCache(b *testing.B)   { benchCollectWorkers(b, "dcache", 0) }

func benchNoiseWorkers(b *testing.B, workers int) {
	c := collect(b, "cpu-flops")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := core.FilterNoiseWithWorkers(c.set, c.bench.Config.Tau, core.MaxRNMSE, workers)
		if len(rep.Variabilities) == 0 {
			b.Fatal("no variabilities")
		}
	}
}

func BenchmarkNoiseFilterSerial(b *testing.B)   { benchNoiseWorkers(b, 1) }
func BenchmarkNoiseFilterParallel(b *testing.B) { benchNoiseWorkers(b, 0) }

func benchBuildX(b *testing.B, workers int) {
	c := collect(b, "cpu-flops")
	noise := c.res.Noise
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		proj, err := core.BuildXWorkers(c.basis, noise.Kept, noise.KeptOrder, c.bench.Config.ProjectionTol, workers)
		if err != nil {
			b.Fatal(err)
		}
		if len(proj.Order) == 0 {
			b.Fatal("no projections")
		}
	}
}

func BenchmarkBuildX(b *testing.B)       { benchBuildX(b, 0) }
func BenchmarkBuildXSerial(b *testing.B) { benchBuildX(b, 1) }

// QRCP ablation: the paper's specialized pivoting versus classical
// largest-norm pivoting on the same projected X (the CPU-FLOPs matrix).
// Specialized picks the 8 FP_ARITH events; classical ranks by norm and picks
// scaled aggregates first.
func BenchmarkQRCPAblationSpecialized(b *testing.B) {
	c := collect(b, "cpu-flops")
	x := c.res.Projection.X
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if core.SpecializedQRCP(x, c.bench.Config.Alpha).Rank == 0 {
			b.Fatal("no rank")
		}
	}
}

func BenchmarkQRCPAblationClassical(b *testing.B) {
	c := collect(b, "cpu-flops")
	x := c.res.Projection.X
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if mat.QRCP(x, 0).Rank == 0 {
			b.Fatal("no rank")
		}
	}
}

// Extension benchmarks: the future-work features layered on the paper.

// BenchmarkSectionVE_AlphaSensitivity sweeps alpha over four decades against
// the CPU-FLOPs X (the Section V-E threshold-sensitivity experiment).
func BenchmarkSectionVE_AlphaSensitivity(b *testing.B) {
	c := collect(b, "cpu-flops")
	sweep := core.DecadeSweep(1e-5, 1e-1, 9)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.AlphaSensitivity(c.res.Projection.X, c.res.Projection.Order, sweep)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.ConsensusEvents) == 0 {
			b.Fatal("no consensus")
		}
	}
}

// BenchmarkAutoTau measures the automatic threshold selection on a full
// variability spectrum.
func BenchmarkAutoTau(b *testing.B) {
	c := collect(b, "cpu-flops")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s := core.SuggestTau(c.res.Noise.Variabilities); s.Tau <= 0 {
			b.Fatal("bad suggestion")
		}
	}
}

// BenchmarkPresetGeneration emits PAPI-style presets for all four metric
// tables.
func BenchmarkPresetGeneration(b *testing.B) {
	var all [][]*core.MetricDefinition
	for _, name := range suite.Names() {
		c := collect(b, name)
		defs, err := c.res.DefineMetrics(c.bench.Signatures)
		if err != nil {
			b.Fatal(err)
		}
		all = append(all, defs)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, defs := range all {
			if out := core.FormatPresets(defs, 0.05, 1e-6); len(out) == 0 {
				b.Fatal("empty presets")
			}
		}
	}
}

// Noise-measure ablation: Eq. 4's RNMSE vs the MAD and CV alternatives over
// the same repetition data.
func benchNoiseMeasure(b *testing.B, measure core.NoiseMeasure) {
	c := collect(b, "dcache")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := core.FilterNoiseWith(c.set, c.bench.Config.Tau, measure)
		if len(rep.Variabilities) == 0 {
			b.Fatal("no variabilities")
		}
	}
}

func BenchmarkNoiseMeasureRNMSE(b *testing.B) { benchNoiseMeasure(b, core.MaxRNMSE) }
func BenchmarkNoiseMeasureMAD(b *testing.B)   { benchNoiseMeasure(b, core.MaxPairwiseMAD) }
func BenchmarkNoiseMeasureCV(b *testing.B)    { benchNoiseMeasure(b, core.MaxCV) }

// End-to-end: the public-API path a downstream user takes.
func BenchmarkEndToEndQuickstart(b *testing.B) {
	bench, err := eventlens.BenchmarkByName("branch")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, _, err := bench.Analyze(eventlens.DefaultRunConfig())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := res.DefineMetrics(eventlens.BranchSignatures()); err != nil {
			b.Fatal(err)
		}
	}
}
