module github.com/perfmetrics/eventlens

go 1.23
