package eventlens_test

import (
	"fmt"

	"github.com/perfmetrics/eventlens"
)

// Compose double-precision FLOPs on the simulated Sapphire Rapids — the
// paper's motivating example, end to end through the public API.
func Example() {
	bench, err := eventlens.BenchmarkByName("cpu-flops")
	if err != nil {
		panic(err)
	}
	res, _, err := bench.Analyze(eventlens.DefaultRunConfig())
	if err != nil {
		panic(err)
	}
	for _, sig := range eventlens.CPUFlopsSignatures() {
		if sig.Name != "DP Ops." {
			continue
		}
		def, err := res.DefineMetric(sig)
		if err != nil {
			panic(err)
		}
		for _, term := range def.Rounded(0.05).NonZeroTerms() {
			fmt.Printf("%g x %s\n", term.Coeff, term.Event)
		}
	}
	// Output:
	// 2 x FP_ARITH_INST_RETIRED:128B_PACKED_DOUBLE
	// 4 x FP_ARITH_INST_RETIRED:256B_PACKED_DOUBLE
	// 8 x FP_ARITH_INST_RETIRED:512B_PACKED_DOUBLE
	// 1 x FP_ARITH_INST_RETIRED:SCALAR_DOUBLE
}

// Decode what an undocumented raw event measures.
func ExampleExplainEvent() {
	bench, err := eventlens.BenchmarkByName("branch")
	if err != nil {
		panic(err)
	}
	platform, err := bench.NewPlatform()
	if err != nil {
		panic(err)
	}
	set, err := bench.Run(platform, eventlens.DefaultRunConfig())
	if err != nil {
		panic(err)
	}
	basis, err := bench.Basis()
	if err != nil {
		panic(err)
	}
	noise := eventlens.FilterNoise(set, 1e-10)
	e, err := eventlens.ExplainEvent(basis, "BR_INST_RETIRED:COND_NTAKEN",
		noise.Kept["BR_INST_RETIRED:COND_NTAKEN"], 5e-4, 1e-2)
	if err != nil {
		panic(err)
	}
	fmt.Println(e)
	// Output:
	// BR_INST_RETIRED:COND_NTAKEN = 1 x CR - 1 x T   (exact)
}

// The paper's pivot scoring, via the facade.
func ExampleColumnScore() {
	fmt.Println(eventlens.ColumnScore([]float64{1.002, 0.001, -0.5, 1.5}, 0.01))
	// Output: 4.5
}
