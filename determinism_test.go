// Determinism under parallelism: the pipeline's worker pools must not change
// a single byte of output. Measurement noise is seeded purely by
// (platform, event, group, point, rep, thread) coordinates and every parallel
// stage assembles its results in measurement order, so running with one
// worker and with many must produce identical reports — this is what lets
// Workers stay out of the result-cache keys.
package eventlens_test

import (
	"testing"

	"github.com/perfmetrics/eventlens/internal/cat"
	"github.com/perfmetrics/eventlens/internal/core"
	"github.com/perfmetrics/eventlens/internal/suite"
)

// analysisReport runs one benchmark end to end — collection, noise filter,
// projection, QRCP, metric definition — with the given worker count in both
// the collection and analysis configs, and renders the full report.
func analysisReport(t *testing.T, bench suite.Benchmark, workers int) string {
	t.Helper()
	platform, err := bench.NewPlatform()
	if err != nil {
		t.Fatal(err)
	}
	run := bench.DefaultRun
	run.Workers = workers
	set, err := bench.Run(platform, run)
	if err != nil {
		t.Fatal(err)
	}
	basis, err := bench.Basis()
	if err != nil {
		t.Fatal(err)
	}
	cfg := bench.Config
	cfg.Workers = workers
	pipe := &core.Pipeline{Basis: basis, Config: cfg}
	res, err := pipe.Analyze(set)
	if err != nil {
		t.Fatal(err)
	}
	defs, err := res.DefineMetrics(bench.Signatures)
	if err != nil {
		t.Fatal(err)
	}
	return core.FormatAnalysisReport(res, cfg.ProjectionTol, bench.MetricTable, defs)
}

// TestParallelReportByteIdentical asserts the serial-equivalence guarantee on
// every suite benchmark: Workers=1 (the serial path) and Workers=8 (more
// workers than some hosts have cores, which exercises the queueing paths too)
// render byte-identical analysis reports.
func TestParallelReportByteIdentical(t *testing.T) {
	for _, bench := range suite.All() {
		bench := bench
		t.Run(bench.Name, func(t *testing.T) {
			t.Parallel()
			serial := analysisReport(t, bench, 1)
			parallel := analysisReport(t, bench, 8)
			if serial != parallel {
				t.Fatalf("Workers=1 and Workers=8 reports differ for %s:\n--- serial ---\n%s\n--- parallel ---\n%s",
					bench.Name, serial, parallel)
			}
			if serial == "" {
				t.Fatal("empty report")
			}
		})
	}
}

// TestStreamEventsWorkersDeterministic pins the streaming collector to the
// same guarantee: per-group fan-out must yield the same events with the same
// vectors in the same order as the serial walk.
func TestStreamEventsWorkersDeterministic(t *testing.T) {
	bench, err := suite.ByName("branch")
	if err != nil {
		t.Fatal(err)
	}
	platform, err := bench.NewPlatform()
	if err != nil {
		t.Fatal(err)
	}
	b := cat.NewBranch()
	points, err := b.GroundTruth()
	if err != nil {
		t.Fatal(err)
	}
	collect := func(workers int) (names []string, vecs [][][]float64) {
		cfg := cat.RunConfig{Reps: 3, Threads: 1, Workers: workers}
		src := cat.StreamEvents(platform, points, cfg)
		err := src(func(name string, reps [][]float64) error {
			names = append(names, name)
			vecs = append(vecs, reps)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return names, vecs
	}
	n1, v1 := collect(1)
	n8, v8 := collect(8)
	if len(n1) == 0 || len(n1) != len(n8) {
		t.Fatalf("event counts differ: %d vs %d", len(n1), len(n8))
	}
	for i := range n1 {
		if n1[i] != n8[i] {
			t.Fatalf("event %d: order differs: %q vs %q", i, n1[i], n8[i])
		}
		for r := range v1[i] {
			for p := range v1[i][r] {
				if v1[i][r][p] != v8[i][r][p] {
					t.Fatalf("event %q rep %d point %d: %v vs %v", n1[i], r, p, v1[i][r][p], v8[i][r][p])
				}
			}
		}
	}
}
