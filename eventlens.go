// Package eventlens automatically derives high-level performance metrics
// (FLOPs, branch behaviour, cache traffic) from raw hardware performance
// events, implementing the methodology of Barry, Danalis and Dongarra,
// "Automated Data Analysis for Defining Performance Metrics from Raw
// Hardware Events" (IPDPSW 2024).
//
// The analysis takes raw-event measurement vectors collected while running
// microkernels with known behaviour (the CAT benchmarks), and in four stages
// turns them into metric definitions:
//
//  1. Noise filtering — events whose run-to-run variability (maximum
//     pairwise RNMSE) exceeds a threshold tau are dropped.
//  2. Projection — surviving measurement vectors are expressed in an
//     expectation basis of ideal events by least squares; events the basis
//     cannot represent are dropped.
//  3. Specialized QRCP — a column-pivoted QR factorization whose pivot rule
//     prefers basis-like columns selects a linearly independent subset of
//     events that carry distinct information.
//  4. Metric definition — each metric signature is solved against the
//     selected events by least squares; the backward error says whether the
//     metric is composable on the architecture at all.
//
// The package is a facade over the implementation in internal/: it
// re-exports the analysis types (Pipeline, Basis, Signature, ...), the CAT
// benchmark drivers, and the two simulated platforms (an Intel Sapphire
// Rapids-like CPU and an AMD MI250X-like GPU) that substitute for the
// paper's Aurora and Frontier machines.
//
// # Quick start
//
//	bench, _ := eventlens.BenchmarkByName("cpu-flops")
//	res, _, err := bench.Analyze(eventlens.DefaultRunConfig())
//	if err != nil { ... }
//	def, _ := res.DefineMetric(eventlens.CPUFlopsSignatures()[4]) // DP Ops.
//	fmt.Println(def)
//
// See examples/ for complete programs.
package eventlens

import (
	"github.com/perfmetrics/eventlens/internal/cat"
	"github.com/perfmetrics/eventlens/internal/core"
	"github.com/perfmetrics/eventlens/internal/machine"
	"github.com/perfmetrics/eventlens/internal/mat"
	"github.com/perfmetrics/eventlens/internal/suite"
)

// Core analysis types.
type (
	// Basis is an expectation basis: ideal-event vectors over benchmark
	// points (Section III-B of the paper).
	Basis = core.Basis
	// Signature is a metric's representation in basis coordinates.
	Signature = core.Signature
	// Measurement is one raw-event measurement vector (per rep and thread).
	Measurement = core.Measurement
	// MeasurementSet holds all measurements from one benchmark run.
	MeasurementSet = core.MeasurementSet
	// NoiseReport is the outcome of the RNMSE noise filter (Section IV).
	NoiseReport = core.NoiseReport
	// EventVariability is one event's max-RNMSE noise measure.
	EventVariability = core.EventVariability
	// ProjectionReport is the outcome of basis projection.
	ProjectionReport = core.ProjectionReport
	// Projector projects measurement vectors against a basis factorized once.
	Projector = core.Projector
	// SpecializedQRCPResult is the outcome of Algorithm 2 (Section V).
	SpecializedQRCPResult = core.SpecializedQRCPResult
	// MetricDefinition is a metric composed from raw events (Section VI).
	MetricDefinition = core.MetricDefinition
	// Term is one scaled raw event inside a metric definition.
	Term = core.Term
	// Config holds the analysis thresholds (tau, alpha, tolerances).
	Config = core.Config
	// Pipeline runs the full analysis for one benchmark.
	Pipeline = core.Pipeline
	// Result is the pipeline outcome prior to metric definition.
	Result = core.Result
	// Matrix is the dense matrix type used throughout.
	Matrix = mat.Dense
)

// Platform and benchmark types.
type (
	// Platform is a simulated machine with a raw-event catalog.
	Platform = machine.Platform
	// EventDef defines one raw hardware event.
	EventDef = machine.EventDef
	// Catalog is an ordered raw-event catalog.
	Catalog = machine.Catalog
	// Stats is ground-truth workload statistics per benchmark point.
	Stats = machine.Stats
	// RunConfig controls benchmark collection (reps, threads).
	RunConfig = cat.RunConfig
	// Benchmark bundles a CAT benchmark with its platform and thresholds.
	Benchmark = suite.Benchmark
)

// Analysis constructors and functions.
var (
	// NewBasis validates and constructs an expectation basis.
	NewBasis = core.NewBasis
	// NewMeasurementSet constructs an empty measurement set.
	NewMeasurementSet = core.NewMeasurementSet
	// MaxRNMSE computes Eq. 4 over repetition vectors.
	MaxRNMSE = core.MaxRNMSE
	// FilterNoise runs the Section IV noise analysis.
	FilterNoise = core.FilterNoise
	// NewProjector factorizes a basis once for repeated projections.
	NewProjector = core.NewProjector
	// BuildX projects all kept events and assembles the QRCP input.
	BuildX = core.BuildX
	// BuildXWorkers is BuildX with an explicit worker-pool size (0 means
	// GOMAXPROCS, 1 forces the serial path; results are byte-identical).
	BuildXWorkers = core.BuildXWorkers
	// SpecializedQRCP is the paper's Algorithm 2.
	SpecializedQRCP = core.SpecializedQRCP
	// RoundToGrid is the paper's noise-tolerant rounding R(u).
	RoundToGrid = core.RoundToGrid
	// Score is the paper's per-element pivot score Sc(v).
	Score = core.Score
	// ColumnScore scores one column for pivot selection.
	ColumnScore = core.ColumnScore
	// DefineMetric solves Xhat*y = s for one signature.
	DefineMetric = core.DefineMetric
	// DefaultConfig returns tau=1e-10, alpha=5e-4 (FLOPs/branch benchmarks).
	DefaultConfig = core.DefaultConfig
	// CacheConfig returns tau=1e-1, alpha=5e-2 (data-cache benchmark).
	CacheConfig = core.CacheConfig
)

// Extensions beyond the paper (its stated future work): alternative noise
// measures, automatic threshold selection and alpha-sensitivity analysis.
type (
	// NoiseMeasure quantifies run-to-run variability (0 = identical reps).
	NoiseMeasure = core.NoiseMeasure
	// TauSuggestion is an automatically selected noise threshold.
	TauSuggestion = core.TauSuggestion
	// SensitivityResult summarizes an alpha-sweep stability analysis.
	SensitivityResult = core.SensitivityResult
)

var (
	// FilterNoiseWith is FilterNoise with a pluggable noise measure.
	FilterNoiseWith = core.FilterNoiseWith
	// FilterNoiseWithWorkers is FilterNoiseWith with an explicit worker-pool
	// size (0 means GOMAXPROCS, 1 forces the serial path; results are
	// byte-identical).
	FilterNoiseWithWorkers = core.FilterNoiseWithWorkers
	// MaxPairwiseMAD is a median-based, glitch-robust noise measure.
	MaxPairwiseMAD = core.MaxPairwiseMAD
	// MaxCV is the classical coefficient-of-variation noise measure.
	MaxCV = core.MaxCV
	// SuggestTau picks a noise threshold from the variability spectrum.
	SuggestTau = core.SuggestTau
	// AlphaSensitivity sweeps the QRCP tolerance and reports stability.
	AlphaSensitivity = core.AlphaSensitivity
	// DecadeSweep returns log-spaced values for threshold sweeps.
	DecadeSweep = core.DecadeSweep
	// Zen4 is a simulated AMD-Zen4-like CPU whose FP events merge
	// precisions — precision-specific metrics are not composable on it.
	Zen4 = machine.Zen4
)

// Signature tables (the paper's Tables I-IV) and basis symbol orders.
var (
	CPUFlopsSignatures   = core.CPUFlopsSignatures
	GPUFlopsSignatures   = core.GPUFlopsSignatures
	BranchSignatures     = core.BranchSignatures
	CacheSignatures      = core.CacheSignatures
	CPUFlopsBasisSymbols = core.CPUFlopsBasisSymbols
	GPUFlopsBasisSymbols = core.GPUFlopsBasisSymbols
	BranchBasisSymbols   = core.BranchBasisSymbols
	CacheBasisSymbols    = core.CacheBasisSymbols
)

// Matrix and catalog constructors for user-defined architectures and bases.
var (
	// NewMatrix returns a zeroed dense matrix.
	NewMatrix = mat.NewDense
	// MatrixFromColumns assembles a matrix from column vectors.
	MatrixFromColumns = mat.FromColumns
	// NewCatalog builds a raw-event catalog for a custom platform.
	NewCatalog = machine.NewCatalog
)

// Simulated platforms.
var (
	// SapphireRapids is the Intel-SPR-like CPU platform (Aurora stand-in).
	SapphireRapids = machine.SapphireRapids
	// MI250X is the AMD-MI250X-like GPU platform (Frontier stand-in).
	MI250X = machine.MI250X
)

// Benchmark registry.
var (
	// Benchmarks returns the four CAT benchmarks in paper order.
	Benchmarks = suite.All
	// BenchmarkByName looks a benchmark up by key: "cpu-flops",
	// "gpu-flops", "branch" or "dcache".
	BenchmarkByName = suite.ByName
	// DefaultRunConfig matches the paper's collection setup (5 reps).
	DefaultRunConfig = cat.DefaultRunConfig
	// PlanMeasurement computes the counter-scheduling plan for a set of
	// composed metrics on a platform.
	PlanMeasurement = suite.PlanMeasurement
)

// MeasurementPlan describes how to program counters for a set of metrics.
type MeasurementPlan = suite.MeasurementPlan

// Report formatting.
var (
	FormatSignatureTable = core.FormatSignatureTable
	FormatMetricTable    = core.FormatMetricTable
	FormatSelection      = core.FormatSelection
	FormatNoiseSummary   = core.FormatNoiseSummary
)

// PAPI-style preset generation — the downstream artifact the paper's
// introduction motivates.
type (
	// Preset is one auto-generated PAPI-style derived-event definition.
	Preset = core.Preset
)

var (
	// PresetName derives a PAPI symbol from a metric name.
	PresetName = core.PresetName
	// FormatPresets renders composable metrics as preset definition lines.
	FormatPresets = core.FormatPresets
	// EvalPostfix evaluates a preset formula against raw counts.
	EvalPostfix = core.EvalPostfix
)

// Event explanation and ratio metrics.
type (
	// Explanation decodes what a raw event measures in basis vocabulary.
	Explanation = core.Explanation
	// RatioMetric is a quotient of two composed metrics (miss ratios,
	// misprediction rates, MPKI).
	RatioMetric = core.RatioMetric
)

var (
	// ExplainEvent projects one event and renders its ideal-event makeup.
	ExplainEvent = core.ExplainEvent
	// ExplainKept explains every event surviving a noise report.
	ExplainKept = core.ExplainKept
	// NewRatioMetric builds a ratio of two composed metrics.
	NewRatioMetric = core.NewRatioMetric
)

// Streaming collection for very large catalogs.
type (
	// EventSource yields events one at a time to the streaming filter.
	EventSource = core.EventSource
)

var (
	// FilterNoiseStream runs the noise filter over a streaming source,
	// bounding peak memory by the survivors plus one multiplexing group.
	FilterNoiseStream = core.FilterNoiseStream
	// SetSource adapts a MeasurementSet into an EventSource.
	SetSource = core.SetSource
	// StreamEvents measures a platform group by group, yielding per-event
	// repetition vectors without materializing the catalog.
	StreamEvents = cat.StreamEvents
	// SyntheticCatalog generates an arbitrarily large test catalog
	// embedding the SPR signal events (scalability testing).
	SyntheticCatalog = machine.SyntheticCatalog
)
