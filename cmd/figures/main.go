// Command figures regenerates the paper's figures as ASCII plots plus CSV
// data:
//
//	Figure 2a-2d — sorted max-RNMSE event variabilities per benchmark, with
//	               the tau threshold line
//	Figure 3     — data-cache metric approximations: raw-event combinations
//	               vs. metric signatures across the pointer-chase sweep
//
// Usage:
//
//	figures                 (all figures)
//	figures -fig 2a         (one variability figure)
//	figures -fig 3          (the cache approximation figures)
//	figures -csv            (emit CSV instead of ASCII plots)
package main

import (
	"flag"
	"fmt"
	"log"

	"github.com/perfmetrics/eventlens/internal/cat"
	"github.com/perfmetrics/eventlens/internal/core"
	"github.com/perfmetrics/eventlens/internal/cpusim"
	"github.com/perfmetrics/eventlens/internal/suite"
	"github.com/perfmetrics/eventlens/internal/textplot"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("figures: ")
	fig := flag.String("fig", "", "figure to regenerate: 1, 2a, 2b, 2c, 2d, 3 (default all)")
	csv := flag.Bool("csv", false, "emit CSV data instead of ASCII plots")
	flag.Parse()

	if *fig == "" || *fig == "1" {
		figure1()
	}
	for _, bench := range suite.All() {
		if *fig == "" || *fig == bench.Figure {
			figure2(bench, *csv)
		}
	}
	if *fig == "" || *fig == "3" {
		figure3(*csv)
	}
}

// figure1 renders the structure of the K_SCAL microkernel (the paper's
// Figure 1): three loop blocks with known instruction counts.
func figure1() {
	spec := cpusim.FlopsKernelSpec{Prec: cpusim.DP, Width: cpusim.Scalar}
	kernel := cpusim.BuildFlopsKernel(spec)
	exp := cpusim.ExpectedFPInstrs(spec)
	fmt.Printf("Figure 1: double-precision scalar floating-point kernel, K_SCAL (%s)\n", kernel.Name)
	for i, block := range kernel.Blocks {
		fmt.Printf("  +--------------------------------------+\n")
		fmt.Printf("  | Block x%-3d times                     |\n", block.Trips)
		fmt.Printf("  | Body: %d FP instrs -> %3.0f DP scalar   |\n", len(block.Body), exp[i])
		fmt.Printf("  |       instructions per loop          |\n")
		fmt.Printf("  +--------------------------------------+\n")
	}
	fmt.Println()
}

// figure2 renders one panel of Figure 2: sorted event variabilities.
func figure2(bench suite.Benchmark, csv bool) {
	platform, err := bench.NewPlatform()
	if err != nil {
		log.Fatal(err)
	}
	set, err := bench.Run(platform, cat.RunConfig(bench.DefaultRun))
	if err != nil {
		log.Fatal(err)
	}
	report := core.FilterNoise(set, bench.Config.Tau)
	sorted := report.SortedVariabilities()
	title := fmt.Sprintf("Figure %s: sorted event variabilities (CAT %s benchmark, %s)",
		bench.Figure, bench.Name, platform.Name)
	if csv {
		fmt.Println(title)
		fmt.Println("index,event,max_rnmse")
		for i, v := range sorted {
			fmt.Printf("%d,%s,%g\n", i, v.Event, v.MaxRNMSE)
		}
		fmt.Println()
		return
	}
	values := make([]float64, len(sorted))
	for i, v := range sorted {
		values[i] = v.MaxRNMSE
	}
	fmt.Print(textplot.LogScatter(title, values, bench.Config.Tau, 70, 16))
	fmt.Println()
}

// figure3 renders the six cache-metric approximation panels.
func figure3(csv bool) {
	bench, err := suite.ByName("dcache")
	if err != nil {
		log.Fatal(err)
	}
	res, _, err := bench.Analyze(cat.RunConfig(bench.DefaultRun))
	if err != nil {
		log.Fatal(err)
	}
	basis, err := bench.Basis()
	if err != nil {
		log.Fatal(err)
	}
	labels := make([]string, len(basis.PointNames))
	copy(labels, basis.PointNames)
	for _, sig := range core.CacheSignatures() {
		def, err := res.DefineMetric(sig)
		if err != nil {
			log.Fatal(err)
		}
		rounded := def.Rounded(bench.Config.RoundTol)
		combo, err := rounded.Combine(res.Noise.Kept)
		if err != nil {
			log.Fatal(err)
		}
		want, err := basis.Expand(sig.Coeffs)
		if err != nil {
			log.Fatal(err)
		}
		title := fmt.Sprintf("Figure 3: %s from raw events (CAT data cache benchmark)", sig.Name)
		if csv {
			fmt.Println(title)
			fmt.Println("point,combination,signature")
			for i := range combo {
				fmt.Printf("%s,%g,%g\n", labels[i], combo[i], want[i])
			}
			fmt.Println()
			continue
		}
		fmt.Print(textplot.Series(title, combo, want, labels, 70, 10))
		fmt.Printf("  combination: ")
		for i, t := range rounded.NonZeroTerms() {
			if i > 0 {
				fmt.Printf(" + ")
			}
			fmt.Printf("%g x %s", t.Coeff, t.Event)
		}
		fmt.Printf("   (error %.3g)\n\n", def.BackwardError)
	}
}
