// Command figures regenerates the paper's figures as ASCII plots plus CSV
// data:
//
//	Figure 2a-2d — sorted max-RNMSE event variabilities per benchmark, with
//	               the tau threshold line
//	Figure 3     — data-cache metric approximations: raw-event combinations
//	               vs. metric signatures across the pointer-chase sweep
//
// Usage:
//
//	figures                 (all figures)
//	figures -fig 2a         (one variability figure)
//	figures -fig 3          (the cache approximation figures)
//	figures -fig matrix     (the cross-architecture composability matrix)
//	figures -csv            (emit CSV instead of ASCII plots)
//
// The matrix mode runs the full pipeline per (platform, benchmark) pair over
// every registered platform — extend the set with -platform-dir — and prints
// the paper-style composability grid; -json emits the canonical envelope
// byte-identical to the daemon's /v1/matrix response.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"

	"github.com/perfmetrics/eventlens/internal/cat"
	"github.com/perfmetrics/eventlens/internal/cli"
	"github.com/perfmetrics/eventlens/internal/core"
	"github.com/perfmetrics/eventlens/internal/cpusim"
	"github.com/perfmetrics/eventlens/internal/machine"
	"github.com/perfmetrics/eventlens/internal/matrix"
	"github.com/perfmetrics/eventlens/internal/suite"
	"github.com/perfmetrics/eventlens/internal/textplot"
)

func main() {
	cli.Main("figures", run)
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("figures", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fig := fs.String("fig", "", "figure to regenerate: 1, 2a, 2b, 2c, 2d, 3, matrix (default all but matrix)")
	csv := fs.Bool("csv", false, "emit CSV data instead of ASCII plots")
	platformDir := fs.String("platform-dir", "", "matrix: load extra platform definitions (*.pdef, *.json) from this directory")
	platforms := fs.String("platforms", "", "matrix: comma-separated platforms (default every registered platform)")
	benchmarks := fs.String("benchmarks", "", "matrix: comma-separated benchmarks (default every class-matched benchmark)")
	minimal := fs.Bool("minimal", false, "matrix: collect with minimal spanning kernel selection")
	faults := fs.String("faults", "", "matrix: deterministic fault-injection spec, e.g. seed=7,transient=0.2")
	jsonOut := fs.Bool("json", false, "matrix: emit the canonical JSON envelope instead of the text grid")
	if err := cli.ParseFlags(fs, args); err != nil {
		return err
	}

	if *fig == "matrix" {
		return figureMatrix(stdout, *platformDir, *platforms, *benchmarks, *minimal, *faults, *jsonOut)
	}
	if *fig == "" || *fig == "1" {
		figure1(stdout)
	}
	for _, bench := range suite.All() {
		if *fig == "" || *fig == bench.Figure {
			if err := figure2(stdout, bench, *csv); err != nil {
				return err
			}
		}
	}
	if *fig == "" || *fig == "3" {
		if err := figure3(stdout, *csv); err != nil {
			return err
		}
	}
	return nil
}

// figureMatrix renders the cross-architecture composability matrix: the
// full pipeline per class-matched (platform, benchmark) pair, one verdict
// and backward error per metric cell. The -json envelope is byte-identical
// to the daemon's /v1/matrix response for the same request.
func figureMatrix(w io.Writer, platformDir, platforms, benchmarks string, minimal bool, faults string, jsonOut bool) error {
	reg, err := machine.NewRegistry()
	if err != nil {
		return err
	}
	if platformDir != "" {
		if _, err := reg.LoadDir(platformDir); err != nil {
			return err
		}
	}
	req := matrix.Request{
		Platforms:  cli.SplitList(platforms),
		Benchmarks: cli.SplitList(benchmarks),
		Minimal:    minimal,
		Faults:     faults,
	}
	report, err := matrix.Run(context.Background(), reg, req)
	if err != nil {
		return err
	}
	if jsonOut {
		_, err := w.Write(matrix.NewEnvelope(report).CanonicalJSON())
		return err
	}
	_, err = io.WriteString(w, report.Format())
	return err
}

// figure1 renders the structure of the K_SCAL microkernel (the paper's
// Figure 1): three loop blocks with known instruction counts.
func figure1(w io.Writer) {
	spec := cpusim.FlopsKernelSpec{Prec: cpusim.DP, Width: cpusim.Scalar}
	kernel := cpusim.BuildFlopsKernel(spec)
	exp := cpusim.ExpectedFPInstrs(spec)
	fmt.Fprintf(w, "Figure 1: double-precision scalar floating-point kernel, K_SCAL (%s)\n", kernel.Name)
	for i, block := range kernel.Blocks {
		fmt.Fprintf(w, "  +--------------------------------------+\n")
		fmt.Fprintf(w, "  | Block x%-3d times                     |\n", block.Trips)
		fmt.Fprintf(w, "  | Body: %d FP instrs -> %3.0f DP scalar   |\n", len(block.Body), exp[i])
		fmt.Fprintf(w, "  |       instructions per loop          |\n")
		fmt.Fprintf(w, "  +--------------------------------------+\n")
	}
	fmt.Fprintln(w)
}

// figure2 renders one panel of Figure 2: sorted event variabilities.
func figure2(w io.Writer, bench suite.Benchmark, csv bool) error {
	platform, err := bench.NewPlatform()
	if err != nil {
		return err
	}
	set, err := bench.Run(platform, cat.RunConfig(bench.DefaultRun))
	if err != nil {
		return err
	}
	report := core.FilterNoise(set, bench.Config.Tau)
	sorted := report.SortedVariabilities()
	title := fmt.Sprintf("Figure %s: sorted event variabilities (CAT %s benchmark, %s)",
		bench.Figure, bench.Name, platform.Name)
	if csv {
		fmt.Fprintln(w, title)
		fmt.Fprintln(w, "index,event,max_rnmse")
		for i, v := range sorted {
			fmt.Fprintf(w, "%d,%s,%g\n", i, v.Event, v.MaxRNMSE)
		}
		fmt.Fprintln(w)
		return nil
	}
	values := make([]float64, len(sorted))
	for i, v := range sorted {
		values[i] = v.MaxRNMSE
	}
	fmt.Fprint(w, textplot.LogScatter(title, values, bench.Config.Tau, 70, 16))
	fmt.Fprintln(w)
	return nil
}

// figure3 renders the six cache-metric approximation panels.
func figure3(w io.Writer, csv bool) error {
	bench, err := suite.ByName("dcache")
	if err != nil {
		return err
	}
	res, _, err := bench.Analyze(cat.RunConfig(bench.DefaultRun))
	if err != nil {
		return err
	}
	basis, err := bench.Basis()
	if err != nil {
		return err
	}
	labels := make([]string, len(basis.PointNames))
	copy(labels, basis.PointNames)
	for _, sig := range core.CacheSignatures() {
		def, err := res.DefineMetric(sig)
		if err != nil {
			return err
		}
		rounded := def.Rounded(bench.Config.RoundTol)
		combo, err := rounded.Combine(res.Noise.Kept)
		if err != nil {
			return err
		}
		want, err := basis.Expand(sig.Coeffs)
		if err != nil {
			return err
		}
		title := fmt.Sprintf("Figure 3: %s from raw events (CAT data cache benchmark)", sig.Name)
		if csv {
			fmt.Fprintln(w, title)
			fmt.Fprintln(w, "point,combination,signature")
			for i := range combo {
				fmt.Fprintf(w, "%s,%g,%g\n", labels[i], combo[i], want[i])
			}
			fmt.Fprintln(w)
			continue
		}
		fmt.Fprint(w, textplot.Series(title, combo, want, labels, 70, 10))
		fmt.Fprintf(w, "  combination: ")
		for i, t := range rounded.NonZeroTerms() {
			if i > 0 {
				fmt.Fprintf(w, " + ")
			}
			fmt.Fprintf(w, "%g x %s", t.Coeff, t.Event)
		}
		fmt.Fprintf(w, "   (error %.3g)\n\n", def.BackwardError)
	}
	return nil
}
