package main

import (
	"bytes"
	"errors"
	"flag"
	"strings"
	"testing"

	"github.com/perfmetrics/eventlens/internal/cli"
	"github.com/perfmetrics/eventlens/internal/goldie"
)

func runCmd(t *testing.T, args ...string) string {
	t.Helper()
	var stdout, stderr bytes.Buffer
	if err := run(args, &stdout, &stderr); err != nil {
		t.Fatalf("run(%q): %v\nstderr:\n%s", args, err, stderr.String())
	}
	return stdout.String()
}

func TestGoldenFigure1(t *testing.T) {
	goldie.Assert(t, "figure-1", []byte(runCmd(t, "-fig", "1")))
}

func TestGoldenFigure2aCSV(t *testing.T) {
	goldie.Assert(t, "figure-2a-csv", []byte(runCmd(t, "-fig", "2a", "-csv")))
}

func TestFlagSmoke(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-h"}, &stdout, &stderr); !errors.Is(err, flag.ErrHelp) {
		t.Errorf("-h: got %v, want flag.ErrHelp", err)
	}
	if !strings.Contains(stderr.String(), "-fig") {
		t.Error("-h did not print usage")
	}
	var ue *cli.UsageError
	if err := run([]string{"-nope"}, &stdout, &stderr); !errors.As(err, &ue) {
		t.Errorf("bad flag: got %v, want UsageError", err)
	}
	// An unknown -fig value matches nothing and prints nothing — that is the
	// historical behavior; pin it so a future validation change is deliberate.
	if out := runCmd(t, "-fig", "99"); out != "" {
		t.Errorf("unknown figure printed output: %q", out)
	}
}

// TestGoldenMatrix pins the composability-matrix grid for a small
// cross-architecture slice, and the -json envelope's byte-identity to the
// matrix package's canonical rendering.
func TestGoldenMatrix(t *testing.T) {
	goldie.Assert(t, "figure-matrix", []byte(runCmd(t,
		"-fig", "matrix", "-platforms", "spr,graviton", "-benchmarks", "branch")))
}

// TestMatrixFlagSmoke covers the matrix mode's error paths: unknown
// platforms, class mismatches and bad fault specs are reported, and the
// -json output is byte-identical across runs.
func TestMatrixFlagSmoke(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-fig", "matrix", "-platforms", "m2max"}, &stdout, &stderr); err == nil {
		t.Error("unknown platform did not error")
	}
	if err := run([]string{"-fig", "matrix", "-platforms", "mi250x", "-benchmarks", "branch"}, &stdout, &stderr); err == nil {
		t.Error("class mismatch did not error")
	}
	if err := run([]string{"-fig", "matrix", "-faults", "wat"}, &stdout, &stderr); err == nil {
		t.Error("bad fault spec did not error")
	}
	a := runCmd(t, "-fig", "matrix", "-platforms", "graviton", "-benchmarks", "branch", "-json")
	b := runCmd(t, "-fig", "matrix", "-platforms", "graviton-sim", "-benchmarks", "branch", "-json")
	if a != b {
		t.Error("platform alias changed the JSON envelope")
	}
	if !strings.Contains(a, `"matrix"`) {
		t.Errorf("envelope missing the text grid field:\n%s", a)
	}
}
