package main

import (
	"bytes"
	"errors"
	"flag"
	"strings"
	"testing"

	"github.com/perfmetrics/eventlens/internal/cli"
	"github.com/perfmetrics/eventlens/internal/goldie"
)

func runCmd(t *testing.T, args ...string) string {
	t.Helper()
	var stdout, stderr bytes.Buffer
	if err := run(args, &stdout, &stderr); err != nil {
		t.Fatalf("run(%q): %v\nstderr:\n%s", args, err, stderr.String())
	}
	return stdout.String()
}

func TestGoldenFigure1(t *testing.T) {
	goldie.Assert(t, "figure-1", []byte(runCmd(t, "-fig", "1")))
}

func TestGoldenFigure2aCSV(t *testing.T) {
	goldie.Assert(t, "figure-2a-csv", []byte(runCmd(t, "-fig", "2a", "-csv")))
}

func TestFlagSmoke(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-h"}, &stdout, &stderr); !errors.Is(err, flag.ErrHelp) {
		t.Errorf("-h: got %v, want flag.ErrHelp", err)
	}
	if !strings.Contains(stderr.String(), "-fig") {
		t.Error("-h did not print usage")
	}
	var ue *cli.UsageError
	if err := run([]string{"-nope"}, &stdout, &stderr); !errors.As(err, &ue) {
		t.Errorf("bad flag: got %v, want UsageError", err)
	}
	// An unknown -fig value matches nothing and prints nothing — that is the
	// historical behavior; pin it so a future validation change is deliberate.
	if out := runCmd(t, "-fig", "99"); out != "" {
		t.Errorf("unknown figure printed output: %q", out)
	}
}
