package main

// End-to-end smoke test for the cmd/ binaries: builds cmd/analyze and
// eventlensd with the real toolchain, boots the daemon on an ephemeral
// port, and checks that the service returns the paper's Table V result —
// byte-identical to the batch tool's report — then shuts down cleanly on
// SIGTERM with exit status 0.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// buildBinaries compiles cmd/analyze and cmd/serve into a temp dir.
func buildBinaries(t *testing.T) (analyzeBin, serveBin string) {
	t.Helper()
	dir := t.TempDir()
	analyzeBin = filepath.Join(dir, "analyze")
	serveBin = filepath.Join(dir, "eventlensd")
	for _, b := range []struct{ out, pkg string }{
		{analyzeBin, "./cmd/analyze"},
		{serveBin, "./cmd/serve"},
	} {
		cmd := exec.Command("go", "build", "-o", b.out, b.pkg)
		cmd.Dir = filepath.Join("..", "..") // module root
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("go build %s: %v\n%s", b.pkg, err, out)
		}
	}
	return analyzeBin, serveBin
}

func TestEndToEndAnalyzeAndServe(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped in -short")
	}
	analyzeBin, serveBin := buildBinaries(t)

	// 1. Batch reference: the analyze CLI's report for cpu-flops.
	batch, err := exec.Command(analyzeBin, "-bench", "cpu-flops").Output()
	if err != nil {
		t.Fatalf("analyze -bench cpu-flops: %v", err)
	}
	if !strings.Contains(string(batch), "metric definitions (paper Table V):") {
		t.Fatalf("unexpected analyze output:\n%s", batch)
	}

	// 2. Boot eventlensd on an ephemeral port.
	srv := exec.Command(serveBin, "-addr", "127.0.0.1:0", "-workers", "2", "-shutdown-timeout", "10s")
	stdout, err := srv.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	srv.Stderr = os.Stderr
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv.Process.Kill()

	base := waitListening(t, stdout)

	// 3. Liveness.
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}

	// 4. The service derives the paper's DP Ops definition...
	resp, err = http.Post(base+"/v1/analyze", "application/json",
		strings.NewReader(`{"benchmark":"cpu-flops"}`))
	if err != nil {
		t.Fatal(err)
	}
	var body struct {
		Metrics []struct {
			Metric string `json:"metric"`
			Terms  []struct {
				Event string  `json:"event"`
				Coeff float64 `json:"coeff"`
			} `json:"terms"`
			Composable bool `json:"composable"`
		} `json:"metrics"`
		Report string `json:"report"`
	}
	err = json.NewDecoder(resp.Body).Decode(&body)
	_ = resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("analyze: %d", resp.StatusCode)
	}
	wantCoeffs := map[string]float64{
		"FP_ARITH_INST_RETIRED:SCALAR_DOUBLE":      1,
		"FP_ARITH_INST_RETIRED:128B_PACKED_DOUBLE": 2,
		"FP_ARITH_INST_RETIRED:256B_PACKED_DOUBLE": 4,
		"FP_ARITH_INST_RETIRED:512B_PACKED_DOUBLE": 8,
	}
	foundDP := false
	for _, m := range body.Metrics {
		if m.Metric != "DP Ops." {
			continue
		}
		foundDP = true
		if !m.Composable {
			t.Fatal("DP Ops. not composable over HTTP")
		}
		for _, term := range m.Terms {
			if want, ok := wantCoeffs[term.Event]; ok && math.Abs(term.Coeff-want) > 1e-8 {
				t.Errorf("DP Ops: %s = %v, want %v", term.Event, term.Coeff, want)
			}
		}
	}
	if !foundDP {
		t.Fatal("DP Ops. metric missing from /v1/analyze response")
	}

	// ...and its report is byte-identical to the batch tool's.
	if !bytes.Equal([]byte(body.Report), batch) {
		t.Fatalf("service report differs from analyze CLI output:\n--- service ---\n%s\n--- batch ---\n%s",
			body.Report, batch)
	}

	// 5. Graceful shutdown: SIGTERM drains and exits 0.
	if err := srv.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("eventlensd exited non-zero after SIGTERM: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("eventlensd did not exit after SIGTERM")
	}
}

// waitListening scans the daemon's stdout for the listening banner and
// returns the base URL.
func waitListening(t *testing.T, stdout interface{ Read([]byte) (int, error) }) string {
	t.Helper()
	lines := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if strings.HasPrefix(sc.Text(), "eventlensd listening on ") {
				lines <- strings.TrimPrefix(sc.Text(), "eventlensd listening on ")
				return
			}
		}
	}()
	select {
	case base := <-lines:
		return base
	case <-time.After(15 * time.Second):
		t.Fatal("eventlensd never announced its address")
		return ""
	}
}

// TestAnalyzeCLIFlags smoke-tests the batch CLI's optional outputs so the
// cmd/ layer keeps at least one test over its flag surface.
func TestAnalyzeCLIFlags(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped in -short")
	}
	analyzeBin, _ := buildBinaries(t)
	out, err := exec.Command(analyzeBin, "-bench", "branch", "-presets", "-ratios").Output()
	if err != nil {
		t.Fatalf("analyze -bench branch: %v", err)
	}
	for _, want := range []string{
		"metric definitions (paper Table VII):",
		"PRESET,PAPI_MISPREDICTED_BRANCHES,DERIVED_POSTFIX,",
		"derived ratio metrics:",
	} {
		if !strings.Contains(string(out), want) {
			t.Errorf("analyze output missing %q:\n%s", want, out)
		}
	}
}
