// Command serve runs eventlensd, the HTTP/JSON daemon serving the full
// event-analysis pipeline as an API: synchronous analysis endpoints, an
// async job queue over a bounded worker pool, an LRU+singleflight result
// cache, and self-observability (/healthz, Prometheus-format /metrics).
//
// Usage:
//
//	eventlensd -addr :8080 -workers 8
//
// Endpoints:
//
//	GET    /healthz                  liveness
//	GET    /metrics                  Prometheus text-format metrics
//	GET    /v1/platforms             simulated platforms (built-in + -platform-dir)
//	GET    /v1/benchmarks            CAT benchmark registry
//	POST   /v1/analyze               run the pipeline (cached)
//	POST   /v1/events/validate       event-trust validation (cached)
//	POST   /v1/matrix                cross-architecture composability matrix (cached)
//	POST   /v1/metrics/define        solve one signature against an analysis
//	POST   /v1/events/explain        decode raw events in basis vocabulary
//	GET    /v1/presets/{benchmark}   PAPI-style preset definitions
//	POST   /v1/jobs                  enqueue an async analysis
//	GET    /v1/jobs/{id}             poll job status/result
//	DELETE /v1/jobs/{id}             cancel a queued or running job
//
// The process shuts down gracefully on SIGINT/SIGTERM: in-flight requests
// and queued jobs drain within -shutdown-timeout, then it exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"github.com/perfmetrics/eventlens/internal/cli"
	"github.com/perfmetrics/eventlens/internal/server"
)

func main() {
	cli.Main("eventlensd", run)
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("eventlensd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", ":8080", "listen address (host:port; port 0 picks an ephemeral port)")
	workers := fs.Int("workers", runtime.GOMAXPROCS(0), "async job worker pool size")
	pipelineWorkers := fs.Int("pipeline-workers", 0, "per-run pipeline worker pool size (0 = GOMAXPROCS, 1 = serial; results are identical either way)")
	queueDepth := fs.Int("queue", 0, "async job queue depth (default 4x workers)")
	cacheSize := fs.Int("cache-size", 64, "analysis result cache entries (LRU)")
	jobTimeout := fs.Duration("job-timeout", time.Minute, "per-job pipeline timeout")
	shutdownTimeout := fs.Duration("shutdown-timeout", 10*time.Second, "drain deadline on SIGINT/SIGTERM")
	maxBody := fs.Int64("max-body", 1<<20, "maximum request body bytes")
	chaos := fs.String("chaos", "", "deterministic fault-injection spec for daemon seams, e.g. seed=7,http503=0.1,transient=0.2 (empty = off)")
	jobRetries := fs.Int("job-retries", 0, "re-runs of a transiently faulted async job (0 = the chaos spec's retry budget)")
	storeDir := fs.String("store-dir", "", "persistent result-store directory; analyses survive restarts (empty = off)")
	platformDir := fs.String("platform-dir", "", "load extra platform definitions (*.pdef, *.json) into the registry (empty = built-ins only)")
	peers := fs.String("peers", "", "comma-separated base URLs of every replica in the serving tier, including this one (empty = single replica)")
	selfURL := fs.String("self-url", "", "this replica's own base URL as listed in -peers")
	maxSync := fs.Int("max-sync", 0, "concurrent synchronous analyses admitted before 429 (0 = 4x GOMAXPROCS)")
	logJSON := fs.Bool("log-json", false, "emit logs as JSON instead of text")
	if err := cli.ParseFlags(fs, args); err != nil {
		return err
	}

	cfg := server.Config{
		Addr:            *addr,
		Workers:         *workers,
		PipelineWorkers: *pipelineWorkers,
		QueueDepth:      *queueDepth,
		CacheSize:       *cacheSize,
		JobTimeout:      *jobTimeout,
		ShutdownTimeout: *shutdownTimeout,
		MaxBodyBytes:    *maxBody,
		Chaos:           *chaos,
		JobRetries:      *jobRetries,
		StoreDir:        *storeDir,
		PlatformDir:     *platformDir,
		SelfURL:         *selfURL,
		MaxSyncCompute:  *maxSync,
	}
	if *peers != "" {
		cfg.Peers = strings.Split(*peers, ",")
	}
	// Reject flag typos like -workers=-4 before binding a socket, with the
	// usage exit status rather than a runtime failure.
	if err := cfg.Validate(); err != nil {
		return cli.Usagef("%v", err)
	}

	var handler slog.Handler = slog.NewTextHandler(stderr, nil)
	if *logJSON {
		handler = slog.NewJSONHandler(stderr, nil)
	}
	logger := slog.New(handler)
	cfg.Logger = logger

	srv, err := server.New(cfg)
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Announce the bound address on stdout so scripts (and the e2e smoke
	// test) can find an ephemeral port.
	go func() {
		if a, err := srv.WaitAddr(ctx); err == nil {
			fmt.Fprintf(stdout, "eventlensd listening on http://%s\n", a)
		}
	}()

	if err := srv.Run(ctx); err != nil {
		logger.Error("server failed", "err", err)
		return err
	}
	return nil
}
