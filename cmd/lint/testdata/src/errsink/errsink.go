// Package errsink is a seeded-violation fixture for the errsink analyzer:
// a statement that calls an error-returning function and drops the result.
package errsink

import "os"

// Cleanup removes a file and silently discards the error — the kind of sink
// that turns a failed write into a plausible but wrong result.
func Cleanup(path string) {
	os.Remove(path)
}
