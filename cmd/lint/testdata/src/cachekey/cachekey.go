// Package cachekey is a seeded-violation fixture for the cachekey analyzer:
// the struct below gained a Retries field, but String() was never updated —
// two configs differing only in Retries would share one cache entry.
package cachekey

import "fmt"

// Config is a cache-keyed configuration whose canonical form forgot a field.
//
// lint:cachekey
type Config struct {
	// Tau reaches String().
	Tau float64
	// Retries changes results but never reaches String() — the seeded bug.
	Retries int
	// lint:cachekey-exempt worker count cannot change results
	Workers int
}

// String renders Tau only; Retries was added later and forgotten.
func (c Config) String() string {
	return fmt.Sprintf("tau=%g", c.Tau)
}
