// Package maporder is a seeded-violation fixture for the maporder analyzer:
// the loop below renders map entries in iteration order, which Go randomizes.
package maporder

import (
	"fmt"
	"os"
)

// Dump writes every entry of m to stdout in map-iteration order — the exact
// bug class that breaks byte-identical reports.
func Dump(m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(os.Stdout, "%s=%d\n", k, v)
	}
}
