// Package seedcoord is a seeded-violation fixture for the seedcoord
// analyzer: a par.For body that seeds its RNG from a constant, so every task
// draws the same stream instead of one derived from its coordinate.
package seedcoord

import (
	"math/rand"

	"github.com/perfmetrics/eventlens/internal/par"
)

// Fill draws per-task noise, but the seed ignores the task index — the
// seeded bug: all tasks produce identical values.
func Fill(out []float64) {
	par.For(0, len(out), func(i int) {
		rng := rand.New(rand.NewSource(42))
		out[i] = rng.Float64()
	})
}
