// Package lockbyvalue is a seeded-violation fixture for the lockbyvalue
// analyzer: a value receiver on a mutex-holding type, so every call locks a
// copy and the guard protects nothing.
package lockbyvalue

import "sync"

// Counter guards n with a mutex.
type Counter struct {
	mu sync.Mutex
	n  int
}

// Value locks a copy of the counter — the seeded bug.
func (c Counter) Value() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}
