// Package core is a seeded-violation fixture for the nondetsrc analyzer.
// Its directory path ends in internal/core, so it falls inside the
// analyzer's guarded scope, and the wall-clock read below must be flagged.
package core

import "time"

// Stamp reads the wall clock, which a deterministic core package must not.
func Stamp() int64 {
	return time.Now().UnixNano()
}
