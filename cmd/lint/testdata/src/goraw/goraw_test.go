// Seeded _test.go violation: goraw runs on test files too, and a WaitGroup
// fan-out in a test is exactly the shape par.For replaces.
package goraw

import (
	"sync"
	"testing"
)

func TestFanOut(t *testing.T) {
	var wg sync.WaitGroup
	wg.Add(1)
	wg.Done()
	wg.Wait()
}
