// Package goraw is a seeded-violation fixture for the goraw analyzer: a raw
// go statement outside the sanctioned pool packages, with no panic
// containment and no deterministic join.
package goraw

// Fire launches a goroutine the caller can neither join nor observe fail.
func Fire(done chan<- struct{}) {
	go func() {
		done <- struct{}{}
	}()
}
