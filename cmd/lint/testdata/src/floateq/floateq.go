// Package floateq is a seeded-violation fixture for the floateq analyzer:
// a raw == between floats outside the approved tolerance helpers.
package floateq

// Converged compares two residuals for exact equality, hiding the tolerance
// decision the comparison actually needs.
func Converged(prev, next float64) bool {
	return prev == next
}
