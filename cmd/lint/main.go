// Command lint runs the repository's own static analyzers — the
// determinism and numeric-safety gate described in DESIGN.md §10 — over the
// module, without any dependency outside the standard library.
//
// Usage:
//
//	lint ./...                     (whole module — what CI runs)
//	lint internal/core cmd/serve   (specific package directories)
//	lint -run maporder,floateq ./...
//	lint -list                     (describe the analyzer set)
//
// Findings print as `file:line: analyzer: message` with paths relative to
// the module root, and any finding makes the command exit 1. Vetted
// exceptions live in lint.allow at the module root (see TESTING.md); stale
// allowlist entries are themselves errors, so the file cannot rot.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"github.com/perfmetrics/eventlens/internal/cli"
	"github.com/perfmetrics/eventlens/internal/lint"
)

func main() {
	cli.Main("lint", run)
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	allowFlag := fs.String("allow", "", "allowlist file (default: lint.allow at the module root, if present; 'none' disables)")
	runFlag := fs.String("run", "", "comma-separated analyzer subset (default: all)")
	list := fs.Bool("list", false, "list the analyzers and exit")
	if err := cli.ParseFlags(fs, args); err != nil {
		return err
	}

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-10s %s\n", a.Name, a.Doc)
		}
		return nil
	}
	if *runFlag != "" {
		var err error
		analyzers, err = lint.ByName(strings.Split(*runFlag, ","))
		if err != nil {
			return cli.Usagef("-run: %v", err)
		}
	}

	cwd, err := os.Getwd()
	if err != nil {
		return err
	}
	root, err := lint.FindRoot(cwd)
	if err != nil {
		return err
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		return err
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var pkgs []*lint.Package
	for _, pattern := range patterns {
		switch pattern {
		case "./...", "...":
			all, err := loader.LoadAll()
			if err != nil {
				return err
			}
			pkgs = append(pkgs, all...)
		default:
			pkg, err := loader.LoadDir(pattern)
			if err != nil {
				return err
			}
			pkgs = append(pkgs, pkg)
		}
	}

	diags := lint.Run(pkgs, analyzers)

	rel := func(file string) string {
		r, err := filepath.Rel(root, file)
		if err != nil {
			return file
		}
		return filepath.ToSlash(r)
	}

	allowPath := *allowFlag
	switch allowPath {
	case "":
		p := filepath.Join(root, "lint.allow")
		if _, err := os.Stat(p); err == nil {
			allowPath = p
		}
	case "none":
		allowPath = ""
	}
	var stale []lint.AllowEntry
	allowName := ""
	if allowPath != "" {
		allow, err := lint.ParseAllowFile(allowPath)
		if err != nil {
			return err
		}
		allowName = rel(allowPath)
		diags, stale = allow.Filter(diags, rel)
	}

	for _, d := range diags {
		fmt.Fprintf(stdout, "%s:%d: %s: %s\n", rel(d.Pos.Filename), d.Pos.Line, d.Analyzer, d.Message)
	}
	for _, e := range stale {
		fmt.Fprintf(stdout, "%s:%d: stale allowlist entry %s %s:%d matches no finding; delete it\n",
			allowName, e.SourceLine, e.Analyzer, e.File, e.Line)
	}
	if n := len(diags) + len(stale); n > 0 {
		return fmt.Errorf("%d finding(s)", n)
	}
	return nil
}
