// Command lint runs the repository's own static analyzers — the
// determinism and numeric-safety gate described in DESIGN.md §10 — over the
// module, without any dependency outside the standard library.
//
// Usage:
//
//	lint ./...                     (whole module — what CI runs)
//	lint internal/core cmd/serve   (specific package directories)
//	lint -run maporder,floateq ./...
//	lint -tests=false ./...        (skip _test.go coverage)
//	lint -json ./...               (machine-readable findings for CI)
//	lint -list                     (describe the analyzer set)
//
// Findings print as `file:line: analyzer: message` with paths relative to
// the module root, and any finding makes the command exit 1. With -json the
// same findings are emitted as a JSON document for CI annotation. Vetted
// exceptions live in lint.allow at the module root (see TESTING.md); every
// entry must be position-exact and carry a reason, and stale entries are
// themselves errors, so the file cannot rot.
//
// Packages are typechecked once into a process-shared cache and the
// (package, analyzer) passes then fan out through internal/par — the same
// deterministic pool the gate itself enforces.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"github.com/perfmetrics/eventlens/internal/cli"
	"github.com/perfmetrics/eventlens/internal/lint"
)

func main() {
	cli.Main("lint", run)
}

// jsonFinding is the machine-readable diagnostic shape emitted by -json.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// jsonStale is a stale allowlist entry in the -json document.
type jsonStale struct {
	AllowFile  string `json:"allow_file"`
	SourceLine int    `json:"source_line"`
	Analyzer   string `json:"analyzer"`
	File       string `json:"file"`
	Line       int    `json:"line"`
}

// jsonDoc is the -json output document.
type jsonDoc struct {
	Findings []jsonFinding `json:"findings"`
	Stale    []jsonStale   `json:"stale"`
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	allowFlag := fs.String("allow", "", "allowlist file (default: lint.allow at the module root, if present; 'none' disables)")
	runFlag := fs.String("run", "", "comma-separated analyzer subset (default: all)")
	list := fs.Bool("list", false, "list the analyzers and exit")
	tests := fs.Bool("tests", true, "also lint _test.go files with the test-aware analyzers")
	jsonOut := fs.Bool("json", false, "emit findings as JSON (for CI annotation)")
	workers := fs.Int("workers", 0, "analyzer worker pool size (0 = GOMAXPROCS)")
	if err := cli.ParseFlags(fs, args); err != nil {
		return err
	}
	if *workers < 0 {
		return cli.Usagef("-workers must be >= 0 (0 means GOMAXPROCS), got %d", *workers)
	}

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			mode := ""
			if a.TestFiles {
				mode = " [tests]"
			}
			fmt.Fprintf(stdout, "%-12s %s%s\n", a.Name, a.Doc, mode)
		}
		return nil
	}
	if *runFlag != "" {
		var err error
		analyzers, err = lint.ByName(strings.Split(*runFlag, ","))
		if err != nil {
			return cli.Usagef("-run: %v", err)
		}
	}

	cwd, err := os.Getwd()
	if err != nil {
		return err
	}
	root, err := lint.FindRoot(cwd)
	if err != nil {
		return err
	}
	loader, err := lint.SharedLoader(root)
	if err != nil {
		return err
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var pkgs []*lint.Package
	for _, pattern := range patterns {
		switch pattern {
		case "./...", "...":
			all, err := loader.LoadAll()
			if err != nil {
				return err
			}
			pkgs = append(pkgs, all...)
		default:
			pkg, err := loader.LoadDir(pattern)
			if err != nil {
				return err
			}
			pkgs = append(pkgs, pkg)
		}
	}
	if *tests {
		base := pkgs
		for _, pkg := range base {
			testPkgs, err := loader.LoadDirTests(pkg.Dir)
			if err != nil {
				return err
			}
			pkgs = append(pkgs, testPkgs...)
		}
	}

	diags := lint.RunWorkers(pkgs, analyzers, *workers)

	rel := func(file string) string {
		r, err := filepath.Rel(root, file)
		if err != nil {
			return file
		}
		return filepath.ToSlash(r)
	}

	allowPath := *allowFlag
	switch allowPath {
	case "":
		p := filepath.Join(root, "lint.allow")
		if _, err := os.Stat(p); err == nil {
			allowPath = p
		}
	case "none":
		allowPath = ""
	}
	var stale []lint.AllowEntry
	allowName := ""
	if allowPath != "" {
		allow, err := lint.ParseAllowFile(allowPath)
		if err != nil {
			return err
		}
		known := make(map[string]bool)
		for _, a := range lint.All() {
			known[a.Name] = true
		}
		for _, e := range allow.Entries {
			if !known[e.Analyzer] {
				return fmt.Errorf("%s:%d: unknown analyzer %q in allowlist entry", rel(allowPath), e.SourceLine, e.Analyzer)
			}
		}
		allowName = rel(allowPath)
		diags, stale = allow.Filter(diags, rel)
	}

	if *jsonOut {
		doc := jsonDoc{Findings: []jsonFinding{}, Stale: []jsonStale{}}
		for _, d := range diags {
			doc.Findings = append(doc.Findings, jsonFinding{
				File: rel(d.Pos.Filename), Line: d.Pos.Line, Column: d.Pos.Column,
				Analyzer: d.Analyzer, Message: d.Message,
			})
		}
		for _, e := range stale {
			doc.Stale = append(doc.Stale, jsonStale{
				AllowFile: allowName, SourceLine: e.SourceLine,
				Analyzer: e.Analyzer, File: e.File, Line: e.Line,
			})
		}
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "%s\n", data)
	} else {
		for _, d := range diags {
			fmt.Fprintf(stdout, "%s:%d: %s: %s\n", rel(d.Pos.Filename), d.Pos.Line, d.Analyzer, d.Message)
		}
		for _, e := range stale {
			fmt.Fprintf(stdout, "%s:%d: stale allowlist entry %s %s:%d matches no finding; delete it\n",
				allowName, e.SourceLine, e.Analyzer, e.File, e.Line)
		}
	}
	if n := len(diags) + len(stale); n > 0 {
		return fmt.Errorf("%d finding(s)", n)
	}
	return nil
}
