package main

import (
	"bytes"
	"errors"
	"flag"
	"strings"
	"testing"

	"github.com/perfmetrics/eventlens/internal/cli"
	"github.com/perfmetrics/eventlens/internal/goldie"
)

// fixtureDirs are the seeded-violation packages, one per analyzer (goraw
// seeds a second violation in a _test.go file to prove test coverage).
var fixtureDirs = []string{
	"testdata/src/cachekey",
	"testdata/src/errsink",
	"testdata/src/floateq",
	"testdata/src/goraw",
	"testdata/src/internal/core",
	"testdata/src/lockbyvalue",
	"testdata/src/maporder",
	"testdata/src/seedcoord",
}

// fixtureFindings is the seeded-violation count across fixtureDirs: one per
// analyzer, plus goraw's extra _test.go seed.
const fixtureFindings = "9 finding(s)"

// runLint runs the command in-process and returns stdout plus the error.
func runLint(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	err := run(args, &stdout, &stderr)
	if stderr.Len() > 0 {
		t.Logf("stderr:\n%s", stderr.String())
	}
	return stdout.String(), err
}

func TestGoldenList(t *testing.T) {
	out, err := runLint(t, "-list")
	if err != nil {
		t.Fatalf("-list: %v", err)
	}
	goldie.Assert(t, "list", []byte(out))
}

// TestGoldenFixtures seeds one violation per analyzer and snapshots the
// diagnostics: every analyzer must fire, at the right file and line, with
// exit status 1.
func TestGoldenFixtures(t *testing.T) {
	args := append([]string{"-allow", "none"}, fixtureDirs...)
	out, err := runLint(t, args...)
	if err == nil {
		t.Fatal("fixture run succeeded, want findings")
	}
	if code := cli.ExitCode("lint", err, new(bytes.Buffer)); code != 1 {
		t.Errorf("exit code = %d, want 1", code)
	}
	if err.Error() != fixtureFindings {
		t.Errorf("error = %q, want %q", err, fixtureFindings)
	}
	goldie.Assert(t, "fixtures", []byte(out))
}

// TestGoldenFixturesJSON snapshots the -json document for the same run: CI
// annotation tooling parses this shape.
func TestGoldenFixturesJSON(t *testing.T) {
	args := append([]string{"-allow", "none", "-json"}, fixtureDirs...)
	out, err := runLint(t, args...)
	if err == nil || err.Error() != fixtureFindings {
		t.Fatalf("err = %v, want %s", err, fixtureFindings)
	}
	goldie.Assert(t, "fixtures-json", []byte(out))
}

// TestTestsFlagGatesTestFiles proves -tests=false hides the _test.go seed
// while the regular-file seed still fires.
func TestTestsFlagGatesTestFiles(t *testing.T) {
	out, err := runLint(t, "-allow", "none", "-tests=false", "testdata/src/goraw")
	if err == nil || err.Error() != "1 finding(s)" {
		t.Fatalf("err = %v, want only the non-test seed", err)
	}
	if strings.Contains(out, "_test.go") {
		t.Errorf("-tests=false still reported a test file:\n%s", out)
	}
	out, err = runLint(t, "-allow", "none", "testdata/src/goraw")
	if err == nil || err.Error() != "2 finding(s)" {
		t.Fatalf("err = %v, want both seeds with tests on\n%s", err, out)
	}
	if !strings.Contains(out, "goraw_test.go") {
		t.Errorf("default run missed the _test.go seed:\n%s", out)
	}
}

// TestGoldenSingleAnalyzer checks -run filtering: only the selected
// analyzer's finding survives.
func TestGoldenSingleAnalyzer(t *testing.T) {
	args := append([]string{"-allow", "none", "-run", "maporder"}, fixtureDirs...)
	out, err := runLint(t, args...)
	if err == nil || err.Error() != "1 finding(s)" {
		t.Fatalf("err = %v, want 1 finding", err)
	}
	goldie.Assert(t, "run-maporder", []byte(out))
}

// TestAllowlistSuppresses runs the fixtures under an allowlist covering
// every seeded violation: the run must come back clean.
func TestAllowlistSuppresses(t *testing.T) {
	args := append([]string{"-allow", "testdata/allow/fixtures.allow"}, fixtureDirs...)
	out, err := runLint(t, args...)
	if err != nil {
		t.Fatalf("allowlisted run failed: %v\n%s", err, out)
	}
	if out != "" {
		t.Errorf("allowlisted run printed output:\n%s", out)
	}
}

// TestGoldenStaleAllow checks that an allowlist entry matching no finding is
// itself an error — the allowlist cannot outlive the code it excuses.
func TestGoldenStaleAllow(t *testing.T) {
	out, err := runLint(t, "-allow", "testdata/allow/stale.allow", "testdata/src/floateq")
	if err == nil || err.Error() != "1 finding(s)" {
		t.Fatalf("err = %v, want the stale entry reported as 1 finding", err)
	}
	goldie.Assert(t, "stale-allow", []byte(out))
}

// TestModuleLintsClean is the merge gate in test form: the repository's own
// tree must produce zero findings.
func TestModuleLintsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and typechecks the whole module")
	}
	out, err := runLint(t, "./...")
	if err != nil {
		t.Fatalf("module is not lint-clean: %v\n%s", err, out)
	}
}

func TestFlagSmoke(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-h"}, &stdout, &stderr); !errors.Is(err, flag.ErrHelp) {
		t.Errorf("-h: got %v, want flag.ErrHelp", err)
	}
	if !strings.Contains(stderr.String(), "-allow") {
		t.Error("-h did not print usage")
	}
	var ue *cli.UsageError
	if err := run([]string{"-nope"}, &stdout, &stderr); !errors.As(err, &ue) {
		t.Errorf("bad flag: got %v, want UsageError", err)
	}
	if err := run([]string{"-run", "nosuch", "testdata/src/floateq"}, &stdout, &stderr); !errors.As(err, &ue) {
		t.Errorf("unknown analyzer: got %v, want UsageError", err)
	}
}
