// Command validate scores every raw event of a platform's catalog against
// its documented semantics using the CAT benchmarks' known-exact kernels as
// ground truth, printing a per-event trust report (DESIGN.md §14).
//
// Usage:
//
//	validate -platform spr
//	validate -platform mi250x -json
//	validate -platform spr -bench branch,dcache -fit-tol 1e-3
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"strings"

	"github.com/perfmetrics/eventlens/internal/cli"
	"github.com/perfmetrics/eventlens/internal/validate"
)

func main() {
	cli.Main("validate", run)
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("validate", flag.ContinueOnError)
	fs.SetOutput(stderr)
	platform := fs.String("platform", "", "platform catalog to validate: spr or mi250x")
	benches := fs.String("bench", "", "comma-separated benchmark subset (default: every benchmark of the platform)")
	jsonOut := fs.Bool("json", false, "emit the canonical JSON envelope instead of text (byte-identical to /v1/events/validate)")
	workersFlag := fs.Int("workers", 0, "collection worker pool size (0 = GOMAXPROCS, 1 = serial; output is byte-identical either way)")
	faults := fs.String("faults", "", "deterministic fault injection spec, e.g. seed=7,transient=0.05")
	noisyTau := fs.Float64("noisy-tau", 0, "override the noisy-verdict MaxRNMSE threshold")
	fitTol := fs.Float64("fit-tol", 0, "override the valid/scaled fit-residual tolerance")
	scaleTol := fs.Float64("scale-tol", 0, "override the |scale-1| tolerance separating valid from scaled")
	derivedCos := fs.Float64("derived-cos", 0, "override the minimum cosine for the derived verdict")
	if err := cli.ParseFlags(fs, args); err != nil {
		return err
	}

	if *platform == "" {
		fs.Usage()
		return &cli.UsageError{Err: fmt.Errorf("missing -platform"), Quiet: true}
	}
	if *workersFlag < 0 {
		return cli.Usagef("workers must be >= 0 (0 means GOMAXPROCS), got %d", *workersFlag)
	}
	tol := validate.DefaultTolerances()
	for _, o := range []struct {
		flag *float64
		dst  *float64
	}{
		{noisyTau, &tol.NoisyTau},
		{fitTol, &tol.FitTol},
		{scaleTol, &tol.ScaleTol},
		{derivedCos, &tol.DerivedCos},
	} {
		if *o.flag < 0 {
			return cli.Usagef("tolerances must be > 0, got %g", *o.flag)
		}
		if *o.flag > 0 {
			*o.dst = *o.flag
		}
	}

	req := validate.Request{
		Platform:   *platform,
		Workers:    *workersFlag,
		Faults:     *faults,
		Tolerances: &tol,
	}
	if *benches != "" {
		req.Benchmarks = strings.Split(*benches, ",")
	}
	report, err := validate.Run(context.Background(), req)
	if err != nil {
		return err
	}
	if *jsonOut {
		_, err := stdout.Write(validate.NewEnvelope(report).CanonicalJSON())
		return err
	}
	_, err = io.WriteString(stdout, report.Format())
	return err
}
