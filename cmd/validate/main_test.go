package main

import (
	"bytes"
	"errors"
	"flag"
	"strings"
	"testing"

	"github.com/perfmetrics/eventlens/internal/cli"
	"github.com/perfmetrics/eventlens/internal/goldie"
)

// runCmd invokes run in-process and fails the test on an unexpected error.
func runCmd(t *testing.T, args ...string) (string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	if err := run(args, &stdout, &stderr); err != nil {
		t.Fatalf("run(%q): %v\nstderr:\n%s", args, err, stderr.String())
	}
	return stdout.String(), stderr.String()
}

func TestGoldenMI250X(t *testing.T) {
	out, _ := runCmd(t, "-platform", "mi250x")
	goldie.Assert(t, "mi250x", []byte(out))
}

func TestGoldenSPRBranch(t *testing.T) {
	out, _ := runCmd(t, "-platform", "spr", "-bench", "branch")
	goldie.Assert(t, "spr-branch", []byte(out))
}

func TestGoldenSPRBranchJSON(t *testing.T) {
	out, _ := runCmd(t, "-platform", "spr", "-bench", "branch", "-json")
	goldie.Assert(t, "spr-branch-json", []byte(out))
}

func TestFlagSmoke(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-h"}, &stdout, &stderr); !errors.Is(err, flag.ErrHelp) {
		t.Errorf("-h: got %v, want flag.ErrHelp", err)
	}
	if !strings.Contains(stderr.String(), "-platform") {
		t.Error("-h did not print usage")
	}
	var ue *cli.UsageError
	if err := run([]string{"-definitely-not-a-flag"}, &stdout, &stderr); !errors.As(err, &ue) {
		t.Errorf("bad flag: got %v, want UsageError", err)
	}
	if err := run(nil, &stdout, &stderr); !errors.As(err, &ue) {
		t.Errorf("missing -platform: got %v, want UsageError", err)
	}
}

func TestNegativeWorkersRejected(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run([]string{"-platform", "spr", "-workers", "-2"}, &stdout, &stderr)
	var ue *cli.UsageError
	if !errors.As(err, &ue) {
		t.Fatalf("got %v, want UsageError", err)
	}
	if !strings.Contains(err.Error(), "workers must be >= 0") {
		t.Errorf("unhelpful message: %v", err)
	}
}

func TestNegativeToleranceRejected(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run([]string{"-platform", "spr", "-fit-tol", "-0.5"}, &stdout, &stderr)
	var ue *cli.UsageError
	if !errors.As(err, &ue) {
		t.Fatalf("got %v, want UsageError", err)
	}
}

// TestWorkersByteIdentical pins the CLI half of the determinism contract:
// serial and concurrent collection print the same bytes, text and JSON.
func TestWorkersByteIdentical(t *testing.T) {
	for _, extra := range [][]string{nil, {"-json"}} {
		args := append([]string{"-platform", "spr", "-bench", "branch"}, extra...)
		serial, _ := runCmd(t, append(args, "-workers", "1")...)
		parallel, _ := runCmd(t, append(args, "-workers", "8")...)
		if serial != parallel {
			t.Errorf("%v: workers changed the output", extra)
		}
	}
}
