// Command benchjson converts `go test -bench` text output into a stable JSON
// document, so CI can record the performance trajectory (BENCH_<n>.json per
// PR) without depending on external benchmark-parsing tooling.
//
// Usage:
//
//	go test -run '^$' -bench . -benchtime=1x . | go run ./cmd/benchjson -out BENCH_4.json
//
// Lines that are not benchmark results (goos/goarch/cpu headers, PASS/ok
// trailers) feed the environment header or are ignored; malformed benchmark
// lines are an error so a silently truncated run cannot masquerade as data.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"github.com/perfmetrics/eventlens/internal/cli"
)

// Result is one parsed benchmark line.
type Result struct {
	// Name is the benchmark name with the -GOMAXPROCS suffix preserved,
	// e.g. "BenchmarkCollectDCache-8".
	Name string `json:"name"`
	// Iterations is b.N for the recorded run.
	Iterations int64 `json:"iterations"`
	// NsPerOp is wall-clock nanoseconds per iteration.
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp and AllocsPerOp are present when the benchmark called
	// ReportAllocs (negative means unreported).
	BytesPerOp  int64 `json:"bytes_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
}

// Document is the emitted JSON shape.
type Document struct {
	Goos       string   `json:"goos,omitempty"`
	Goarch     string   `json:"goarch,omitempty"`
	Pkg        string   `json:"pkg,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	cli.Main("benchjson", func(args []string, stdout, stderr io.Writer) error {
		return run(args, os.Stdin, stdout, stderr)
	})
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	fs.SetOutput(stderr)
	out := fs.String("out", "", "output file (default stdout)")
	guard := fs.String("guard", "", "baseline BENCH_<n>.json: compare instead of emitting, fail on regression")
	guardName := fs.String("guard-name", "BenchmarkCollectDCache", "benchmark to guard (GOMAXPROCS suffix ignored)")
	guardFactor := fs.Float64("guard-factor", 2, "fail when ns/op exceeds baseline by more than this factor")
	if err := cli.ParseFlags(fs, args); err != nil {
		return err
	}

	doc, err := parse(stdin)
	if err != nil {
		return err
	}
	if len(doc.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark lines found in input")
	}
	if *guard != "" {
		return runGuard(doc, *guard, *guardName, *guardFactor, stdout)
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if *out == "" {
		_, err := stdout.Write(data)
		return err
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "wrote %d benchmarks to %s\n", len(doc.Benchmarks), *out)
	return nil
}

// baseName strips the -GOMAXPROCS suffix go test appends, so baselines and
// runs recorded on machines with different core counts still compare.
func baseName(name string) string {
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

// findResult locates a benchmark by suffix-normalized name.
func findResult(doc *Document, name string) (Result, bool) {
	for _, r := range doc.Benchmarks {
		if baseName(r.Name) == name {
			return r, true
		}
	}
	return Result{}, false
}

// runGuard compares the parsed run against a committed baseline document and
// fails when the guarded benchmark's ns/op regressed past the factor. A
// missing benchmark on either side is an error — a guard that cannot find
// its subject must not pass silently.
func runGuard(doc *Document, baselinePath, name string, factor float64, stdout io.Writer) error {
	if factor <= 0 {
		return fmt.Errorf("guard-factor must be > 0, got %v", factor)
	}
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("guard baseline: %w", err)
	}
	var baseline Document
	if err := json.Unmarshal(data, &baseline); err != nil {
		return fmt.Errorf("guard baseline %s: %w", baselinePath, err)
	}
	base, ok := findResult(&baseline, name)
	if !ok {
		return fmt.Errorf("guard: baseline %s has no benchmark %q", baselinePath, name)
	}
	cur, ok := findResult(doc, name)
	if !ok {
		return fmt.Errorf("guard: current run has no benchmark %q", name)
	}
	limit := base.NsPerOp * factor
	if cur.NsPerOp > limit {
		return fmt.Errorf("guard: %s regressed to %.0f ns/op, more than %gx the %s baseline of %.0f ns/op",
			name, cur.NsPerOp, factor, baselinePath, base.NsPerOp)
	}
	fmt.Fprintf(stdout, "guard: %s at %.0f ns/op within %gx of baseline %.0f ns/op\n",
		name, cur.NsPerOp, factor, base.NsPerOp)
	return nil
}

// parse scans go-test benchmark output, collecting header fields and results.
func parse(r io.Reader) (*Document, error) {
	doc := &Document{Benchmarks: []Result{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			doc.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			doc.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			res, err := parseLine(line)
			if err != nil {
				return nil, err
			}
			doc.Benchmarks = append(doc.Benchmarks, res)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return doc, nil
}

// parseLine parses one benchmark result line:
//
//	BenchmarkName-8   10   110 ns/op   64 B/op   2 allocs/op
func parseLine(line string) (Result, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 || fields[3] != "ns/op" {
		return Result{}, fmt.Errorf("malformed benchmark line: %q", line)
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, fmt.Errorf("iterations in %q: %w", line, err)
	}
	ns, err := strconv.ParseFloat(fields[2], 64)
	if err != nil {
		return Result{}, fmt.Errorf("ns/op in %q: %w", line, err)
	}
	res := Result{Name: fields[0], Iterations: iters, NsPerOp: ns, BytesPerOp: -1, AllocsPerOp: -1}
	for i := 4; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseInt(fields[i], 10, 64)
		if err != nil {
			continue // custom float metrics (b.ReportMetric) pass through unrecorded
		}
		switch fields[i+1] {
		case "B/op":
			res.BytesPerOp = v
		case "allocs/op":
			res.AllocsPerOp = v
		}
	}
	return res, nil
}
