package main

import (
	"bytes"
	"errors"
	"flag"
	"strings"
	"testing"

	"github.com/perfmetrics/eventlens/internal/cli"
	"github.com/perfmetrics/eventlens/internal/goldie"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: github.com/perfmetrics/eventlens
cpu: Example CPU @ 2.00GHz
BenchmarkCollectDCache-8   	      10	 110250 ns/op	   64320 B/op	     212 allocs/op
BenchmarkQRCP-8            	    5000	    2150 ns/op
PASS
ok  	github.com/perfmetrics/eventlens	1.234s
`

func TestGoldenConvert(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run(nil, strings.NewReader(sampleBench), &stdout, &stderr); err != nil {
		t.Fatalf("run: %v\nstderr:\n%s", err, stderr.String())
	}
	goldie.Assert(t, "convert", stdout.Bytes())
}

func TestMalformedLine(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run(nil, strings.NewReader("BenchmarkBroken-8 10\n"), &stdout, &stderr)
	if err == nil || !strings.Contains(err.Error(), "malformed") {
		t.Errorf("got %v, want malformed-line error", err)
	}
}

func TestEmptyInput(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run(nil, strings.NewReader("PASS\n"), &stdout, &stderr); err == nil {
		t.Error("empty input must be an error, not an empty document")
	}
}

func TestFlagSmoke(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-h"}, strings.NewReader(""), &stdout, &stderr); !errors.Is(err, flag.ErrHelp) {
		t.Errorf("-h: got %v, want flag.ErrHelp", err)
	}
	if !strings.Contains(stderr.String(), "-out") {
		t.Error("-h did not print usage")
	}
	var ue *cli.UsageError
	if err := run([]string{"-nope"}, strings.NewReader(""), &stdout, &stderr); !errors.As(err, &ue) {
		t.Errorf("bad flag: got %v, want UsageError", err)
	}
}
