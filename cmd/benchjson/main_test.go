package main

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"flag"
	"strings"
	"testing"

	"github.com/perfmetrics/eventlens/internal/cli"
	"github.com/perfmetrics/eventlens/internal/goldie"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: github.com/perfmetrics/eventlens
cpu: Example CPU @ 2.00GHz
BenchmarkCollectDCache-8   	      10	 110250 ns/op	   64320 B/op	     212 allocs/op
BenchmarkQRCP-8            	    5000	    2150 ns/op
PASS
ok  	github.com/perfmetrics/eventlens	1.234s
`

func TestGoldenConvert(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run(nil, strings.NewReader(sampleBench), &stdout, &stderr); err != nil {
		t.Fatalf("run: %v\nstderr:\n%s", err, stderr.String())
	}
	goldie.Assert(t, "convert", stdout.Bytes())
}

func TestMalformedLine(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run(nil, strings.NewReader("BenchmarkBroken-8 10\n"), &stdout, &stderr)
	if err == nil || !strings.Contains(err.Error(), "malformed") {
		t.Errorf("got %v, want malformed-line error", err)
	}
}

func TestEmptyInput(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run(nil, strings.NewReader("PASS\n"), &stdout, &stderr); err == nil {
		t.Error("empty input must be an error, not an empty document")
	}
}

func TestFlagSmoke(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-h"}, strings.NewReader(""), &stdout, &stderr); !errors.Is(err, flag.ErrHelp) {
		t.Errorf("-h: got %v, want flag.ErrHelp", err)
	}
	if !strings.Contains(stderr.String(), "-out") {
		t.Error("-h did not print usage")
	}
	var ue *cli.UsageError
	if err := run([]string{"-nope"}, strings.NewReader(""), &stdout, &stderr); !errors.As(err, &ue) {
		t.Errorf("bad flag: got %v, want UsageError", err)
	}
}

// writeBaseline writes a baseline document with the given ns/op for
// BenchmarkCollectDCache (suffix differing from the sample's -8 on purpose,
// to prove name normalization).
func writeBaseline(t *testing.T, ns float64) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "BENCH.json")
	doc := fmt.Sprintf(`{"benchmarks":[{"name":"BenchmarkCollectDCache-4","iterations":1,"ns_per_op":%g,"bytes_per_op":-1,"allocs_per_op":-1}]}`, ns)
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestGuardPassAndFail pins the bench-guard contract: within the factor the
// guard passes, past it the guard fails naming both numbers.
func TestGuardPassAndFail(t *testing.T) {
	// Sample run has BenchmarkCollectDCache-8 at 110250 ns/op.
	pass := writeBaseline(t, 60000) // 2x budget = 120000 > 110250
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-guard", pass}, strings.NewReader(sampleBench), &stdout, &stderr); err != nil {
		t.Fatalf("guard should pass: %v", err)
	}
	if !strings.Contains(stdout.String(), "within") {
		t.Errorf("no pass message: %q", stdout.String())
	}
	fail := writeBaseline(t, 50000) // 2x budget = 100000 < 110250
	err := run([]string{"-guard", fail}, strings.NewReader(sampleBench), &stdout, &stderr)
	if err == nil || !strings.Contains(err.Error(), "regressed") {
		t.Fatalf("guard should fail with a regression message, got %v", err)
	}
}

// TestGuardMissingBenchmark proves a guard that cannot find its subject
// errors instead of passing silently.
func TestGuardMissingBenchmark(t *testing.T) {
	base := writeBaseline(t, 60000)
	var stdout, stderr bytes.Buffer
	err := run([]string{"-guard", base, "-guard-name", "BenchmarkNoSuch"},
		strings.NewReader(sampleBench), &stdout, &stderr)
	if err == nil || !strings.Contains(err.Error(), "no benchmark") {
		t.Fatalf("want missing-benchmark error, got %v", err)
	}
	err = run([]string{"-guard", filepath.Join(t.TempDir(), "missing.json")},
		strings.NewReader(sampleBench), &stdout, &stderr)
	if err == nil {
		t.Fatal("want error for missing baseline file")
	}
}
