// Command analyze runs the full event-analysis pipeline on a measurement
// file produced by cmd/catrun (or collects measurements itself when given
// -bench instead of -in): noise filtering, expectation-basis projection, the
// specialized QRCP, and least-squares metric definition.
//
// Usage:
//
//	analyze -in cpu-flops.json.gz -bench cpu-flops
//	analyze -bench branch            (collect and analyze in one step)
//	analyze -bench branch -platform graviton   (collect on another platform)
//
// -platform picks any class-matched platform from the registry and
// -platform-dir overlays extra *.pdef/*.json definitions; both apply only
// when collecting (they cannot be combined with -in).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"

	"github.com/perfmetrics/eventlens/internal/cat"
	"github.com/perfmetrics/eventlens/internal/catio"
	"github.com/perfmetrics/eventlens/internal/cli"
	"github.com/perfmetrics/eventlens/internal/core"
	"github.com/perfmetrics/eventlens/internal/machine"
	"github.com/perfmetrics/eventlens/internal/suite"
)

func main() {
	cli.Main("analyze", run)
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("analyze", flag.ContinueOnError)
	fs.SetOutput(stderr)
	in := fs.String("in", "", "measurement file from catrun (optional)")
	benchName := fs.String("bench", "", "benchmark whose basis/thresholds/signatures to use")
	tau := fs.Float64("tau", 0, "override noise threshold tau")
	alpha := fs.Float64("alpha", 0, "override QRCP tolerance alpha")
	rounded := fs.Bool("rounded", false, "also print integer-rounded combinations")
	autoTau := fs.Bool("autotau", false, "select tau automatically from the variability gap")
	sensitivity := fs.Bool("sensitivity", false, "sweep alpha over 1e-5..1e-1 and report selection stability (Section V-E)")
	presets := fs.Bool("presets", false, "emit PAPI-style preset definitions for the composable metrics")
	explain := fs.String("explain", "", "explain what a raw event measures in the benchmark's basis ('all' for every kept event)")
	ratios := fs.Bool("ratios", false, "also derive the benchmark's standard ratio metrics")
	minimal := fs.Bool("minimal", false, "collect only the minimal spanning kernel subset (similarity-clustered points)")
	platformName := fs.String("platform", "", "collect on this platform instead of the benchmark's default (class must match)")
	platformDir := fs.String("platform-dir", "", "load extra platform definitions (*.pdef, *.json) from this directory")
	workersFlag := fs.Int("workers", 0, "pipeline worker pool size (0 = GOMAXPROCS, 1 = serial; output is byte-identical either way)")
	if err := cli.ParseFlags(fs, args); err != nil {
		return err
	}

	if *benchName == "" {
		fs.Usage()
		return &cli.UsageError{Err: fmt.Errorf("missing -bench"), Quiet: true}
	}
	bench, err := suite.ByName(*benchName)
	if err != nil {
		return err
	}
	cfg := bench.Config
	if *tau > 0 {
		cfg.Tau = *tau
	}
	if *alpha > 0 {
		cfg.Alpha = *alpha
	}
	if *workersFlag < 0 {
		return cli.Usagef("workers must be >= 0 (0 means GOMAXPROCS), got %d", *workersFlag)
	}
	cfg.Workers = *workersFlag

	var set *core.MeasurementSet
	if *in != "" {
		if *platformName != "" {
			return cli.Usagef("-platform selects a collection target; it cannot be combined with -in")
		}
		set, err = catio.ReadFile(*in)
		if err != nil {
			return err
		}
		if set.Benchmark != bench.Name {
			return fmt.Errorf("measurement file holds %q data, benchmark is %q", set.Benchmark, bench.Name)
		}
	} else {
		runCfg := cat.RunConfig(bench.DefaultRun)
		runCfg.Workers = *workersFlag
		runCfg.MinimalKernels = *minimal
		if *platformName != "" || *platformDir != "" {
			reg, err := machine.NewRegistry()
			if err != nil {
				return err
			}
			if *platformDir != "" {
				if _, err := reg.LoadDir(*platformDir); err != nil {
					return err
				}
			}
			name := *platformName
			if name == "" {
				// A platform dir without -platform still collects on the
				// benchmark's default platform (possibly overridden in dir).
				p, err := bench.NewPlatform()
				if err != nil {
					return err
				}
				name = p.Name
			}
			platform, err := reg.New(name)
			if err != nil {
				return err
			}
			set, err = bench.CollectOn(context.Background(), platform, runCfg)
			if err != nil {
				return err
			}
		} else {
			platform, err := bench.NewPlatform()
			if err != nil {
				return err
			}
			set, err = bench.Run(platform, runCfg)
			if err != nil {
				return err
			}
		}
	}

	// The basis must match the set's points: a -minimal collection (or a
	// reduced measurement file) analyzes against the matching basis rows.
	basis, err := bench.BasisFor(set)
	if err != nil {
		return err
	}
	if *autoTau {
		// Run a preliminary noise pass and pick tau from the widest gap in
		// the variability spectrum.
		pre := core.FilterNoise(set, cfg.Tau)
		s := core.SuggestTau(pre.Variabilities)
		fmt.Fprintf(stdout, "auto tau: %.3e (gap of %.1f decades, %d events below, %d above)\n",
			s.Tau, s.GapDecades, s.Below, s.Above)
		cfg.Tau = s.Tau
	}
	pipe := &core.Pipeline{Basis: basis, Config: cfg}
	res, err := pipe.Analyze(set)
	if err != nil {
		return err
	}
	if *explain != "" {
		fmt.Fprintln(stdout, "event explanations (in the basis:", basis.Names, "):")
		names := res.Noise.KeptOrder
		if *explain != "all" {
			names = []string{*explain}
		}
		for _, name := range names {
			m, ok := res.Noise.Kept[name]
			if !ok {
				return fmt.Errorf("event %q not among the kept events (noisy, all-zero, or unknown)", name)
			}
			e, err := core.ExplainEvent(basis, name, m, cfg.Alpha, cfg.ProjectionTol)
			if err != nil {
				return err
			}
			fmt.Fprintln(stdout, " ", e)
		}
		fmt.Fprintln(stdout)
	}
	if *sensitivity {
		sweep := core.DecadeSweep(1e-5, 1e-1, 9)
		sens, err := core.AlphaSensitivity(res.Projection.X, res.Projection.Order, sweep)
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, sens)
	}

	defs, err := res.DefineMetrics(bench.Signatures)
	if err != nil {
		return err
	}
	fmt.Fprint(stdout, core.FormatAnalysisReport(res, cfg.ProjectionTol, bench.MetricTable, defs))
	if *rounded {
		fmt.Fprintln(stdout)
		roundedDefs := make([]*core.MetricDefinition, len(defs))
		for i, d := range defs {
			roundedDefs[i] = d.Rounded(cfg.RoundTol)
		}
		fmt.Fprint(stdout, core.FormatMetricTable("integer-rounded combinations:", roundedDefs))
	}
	if *presets {
		fmt.Fprintln(stdout)
		fmt.Fprintf(stdout, "# auto-generated presets for %s (%s benchmark)\n", set.Platform, bench.Name)
		fmt.Fprint(stdout, core.FormatPresets(defs, cfg.RoundTol, 1e-6))
	}
	if *ratios {
		fmt.Fprintln(stdout)
		fmt.Fprintln(stdout, "derived ratio metrics:")
		printRatios(stdout, bench.Name, defs, cfg.RoundTol)
	}
	return nil
}

// ratioSpecs names the standard ratio metrics per benchmark, as
// numerator/denominator metric names from the benchmark's signature table.
var ratioSpecs = map[string][][3]string{
	"branch": {
		{"Branch Misprediction Ratio", "Mispredicted Branches.", "Conditional Branches Retired."},
		{"Taken Ratio", "Conditional Branches Taken.", "Conditional Branches Retired."},
	},
	"dcache": {
		{"L1 Miss Ratio", "L1 Misses.", "L1 Reads."},
		{"L2 Miss Ratio", "L2 Misses.", "L1 Misses."},
	},
	"cpu-flops": {
		{"DP Fraction of Ops", "DP Ops.", "SP Ops."},
	},
}

// printRatios derives and renders the benchmark's standard ratio metrics.
func printRatios(w io.Writer, benchName string, defs []*core.MetricDefinition, roundTol float64) {
	byName := map[string]*core.MetricDefinition{}
	for _, d := range defs {
		byName[d.Metric] = d.Rounded(roundTol)
	}
	specs, ok := ratioSpecs[benchName]
	if !ok {
		fmt.Fprintln(w, "  (no standard ratios defined for this benchmark)")
		return
	}
	for _, spec := range specs {
		num, den := byName[spec[1]], byName[spec[2]]
		ratio, err := core.NewRatioMetric(spec[0], num, den)
		if err != nil {
			fmt.Fprintf(w, "  %s: %v\n", spec[0], err)
			continue
		}
		fmt.Fprintf(w, "  %s\n    events needed: %d\n", ratio, len(ratio.Events()))
	}
}
