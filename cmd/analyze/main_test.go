package main

import (
	"bytes"
	"errors"
	"flag"
	"strings"
	"testing"

	"github.com/perfmetrics/eventlens/internal/cli"
	"github.com/perfmetrics/eventlens/internal/goldie"
)

// runCmd invokes run in-process and fails the test on an unexpected error.
func runCmd(t *testing.T, args ...string) (string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	if err := run(args, &stdout, &stderr); err != nil {
		t.Fatalf("run(%q): %v\nstderr:\n%s", args, err, stderr.String())
	}
	return stdout.String(), stderr.String()
}

func TestGoldenCPUFlops(t *testing.T) {
	out, _ := runCmd(t, "-bench", "cpu-flops", "-rounded")
	goldie.Assert(t, "cpu-flops-rounded", []byte(out))
}

func TestGoldenBranchExtras(t *testing.T) {
	out, _ := runCmd(t, "-bench", "branch", "-presets", "-ratios")
	goldie.Assert(t, "branch-presets-ratios", []byte(out))
}

func TestFlagSmoke(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-h"}, &stdout, &stderr); !errors.Is(err, flag.ErrHelp) {
		t.Errorf("-h: got %v, want flag.ErrHelp", err)
	}
	if !strings.Contains(stderr.String(), "-bench") {
		t.Error("-h did not print usage")
	}
	var ue *cli.UsageError
	if err := run([]string{"-definitely-not-a-flag"}, &stdout, &stderr); !errors.As(err, &ue) {
		t.Errorf("bad flag: got %v, want UsageError", err)
	}
	if err := run(nil, &stdout, &stderr); !errors.As(err, &ue) {
		t.Errorf("missing -bench: got %v, want UsageError", err)
	}
}

func TestNegativeWorkersRejected(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run([]string{"-bench", "cpu-flops", "-workers", "-2"}, &stdout, &stderr)
	var ue *cli.UsageError
	if !errors.As(err, &ue) {
		t.Fatalf("got %v, want UsageError", err)
	}
	if !strings.Contains(err.Error(), "workers must be >= 0") {
		t.Errorf("unhelpful message: %v", err)
	}
}
