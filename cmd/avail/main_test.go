package main

import (
	"bytes"
	"errors"
	"flag"
	"strings"
	"testing"

	"github.com/perfmetrics/eventlens/internal/cli"
	"github.com/perfmetrics/eventlens/internal/goldie"
)

func runCmd(t *testing.T, args ...string) string {
	t.Helper()
	var stdout, stderr bytes.Buffer
	if err := run(args, &stdout, &stderr); err != nil {
		t.Fatalf("run(%q): %v\nstderr:\n%s", args, err, stderr.String())
	}
	return stdout.String()
}

func TestGoldenCounts(t *testing.T) {
	goldie.Assert(t, "spr-counts", []byte(runCmd(t, "-platform", "spr", "-counts")))
}

func TestGoldenGrep(t *testing.T) {
	goldie.Assert(t, "mi250x-valu", []byte(runCmd(t, "-platform", "mi250x", "-grep", "VALU")))
}

func TestFlagSmoke(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-h"}, &stdout, &stderr); !errors.Is(err, flag.ErrHelp) {
		t.Errorf("-h: got %v, want flag.ErrHelp", err)
	}
	if !strings.Contains(stderr.String(), "-platform") {
		t.Error("-h did not print usage")
	}
	var ue *cli.UsageError
	if err := run([]string{"-nope"}, &stdout, &stderr); !errors.As(err, &ue) {
		t.Errorf("bad flag: got %v, want UsageError", err)
	}
	if err := run([]string{"-platform", "vax"}, &stdout, &stderr); !errors.As(err, &ue) {
		t.Errorf("unknown platform: got %v, want UsageError", err)
	}
}
