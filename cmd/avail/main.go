// Command avail lists the raw events of a simulated platform — the analog
// of papi_avail / papi_native_avail for this repository's machines.
//
// Usage:
//
//	avail -platform spr                  (all events)
//	avail -platform mi250x -grep VALU    (filtered)
//	avail -platform zen4 -counts         (catalog statistics only)
package main

import (
	"flag"
	"fmt"
	"io"
	"strings"

	"github.com/perfmetrics/eventlens/internal/cli"
	"github.com/perfmetrics/eventlens/internal/machine"
)

func main() {
	cli.Main("avail", run)
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("avail", flag.ContinueOnError)
	fs.SetOutput(stderr)
	platformName := fs.String("platform", "spr", "platform name or its -sim shorthand (see -list)")
	platformDir := fs.String("platform-dir", "", "load extra platform definitions (*.pdef, *.json) from this directory")
	list := fs.Bool("list", false, "list the registered platforms and exit")
	grep := fs.String("grep", "", "only list events whose name contains this substring")
	counts := fs.Bool("counts", false, "print catalog statistics only")
	if err := cli.ParseFlags(fs, args); err != nil {
		return err
	}

	reg, err := machine.NewRegistry()
	if err != nil {
		return err
	}
	if *platformDir != "" {
		if _, err := reg.LoadDir(*platformDir); err != nil {
			return err
		}
	}
	if *list {
		for _, name := range reg.Names() {
			def, err := reg.Def(name)
			if err != nil {
				return err
			}
			fmt.Fprintf(stdout, "%-20s %-4s %6d events  %3d counters\n",
				name, def.Class, len(def.Events), def.Counters)
		}
		return nil
	}
	p, err := reg.New(*platformName)
	if err != nil {
		return cli.Usagef("%v", err)
	}

	names := p.Catalog.SortedNames()
	if *counts {
		noisy, exact := 0, 0
		for _, name := range names {
			def, _ := p.Catalog.Lookup(name)
			if def.RelNoise > 0 || def.AbsNoise > 0 {
				noisy++
			} else {
				exact++
			}
		}
		fmt.Fprintf(stdout, "%s: %d events (%d deterministic, %d noisy), %d programmable counters, %d counter constraints\n",
			p.Name, len(names), exact, noisy, p.Counters, len(p.Constraints))
		return nil
	}
	shown := 0
	for _, name := range names {
		if *grep != "" && !strings.Contains(name, *grep) {
			continue
		}
		def, _ := p.Catalog.Lookup(name)
		noise := "deterministic"
		if def.RelNoise > 0 {
			noise = fmt.Sprintf("noise %.1e", def.RelNoise)
		}
		constraint := ""
		if c, ok := p.Constraints[name]; ok && c.Fixed >= 0 {
			constraint = fmt.Sprintf("  [fixed counter %d]", c.Fixed)
		}
		fmt.Fprintf(stdout, "%-56s %-14s %s%s\n", name, noise, def.Desc, constraint)
		shown++
	}
	fmt.Fprintf(stdout, "-- %d of %d events\n", shown, len(names))
	return nil
}
