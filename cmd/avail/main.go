// Command avail lists the raw events of a simulated platform — the analog
// of papi_avail / papi_native_avail for this repository's machines.
//
// Usage:
//
//	avail -platform spr                  (all events)
//	avail -platform mi250x -grep VALU    (filtered)
//	avail -platform zen4 -counts         (catalog statistics only)
package main

import (
	"flag"
	"fmt"
	"io"
	"strings"

	"github.com/perfmetrics/eventlens/internal/cli"
	"github.com/perfmetrics/eventlens/internal/machine"
)

func main() {
	cli.Main("avail", run)
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("avail", flag.ContinueOnError)
	fs.SetOutput(stderr)
	platformName := fs.String("platform", "spr", "platform: spr, mi250x, zen4")
	grep := fs.String("grep", "", "only list events whose name contains this substring")
	counts := fs.Bool("counts", false, "print catalog statistics only")
	if err := cli.ParseFlags(fs, args); err != nil {
		return err
	}

	var (
		p   *machine.Platform
		err error
	)
	switch *platformName {
	case "spr":
		p, err = machine.SapphireRapids()
	case "mi250x":
		p, err = machine.MI250X()
	case "zen4":
		p, err = machine.Zen4()
	default:
		return cli.Usagef("unknown platform %q (have spr, mi250x, zen4)", *platformName)
	}
	if err != nil {
		return err
	}

	names := p.Catalog.SortedNames()
	if *counts {
		noisy, exact := 0, 0
		for _, name := range names {
			def, _ := p.Catalog.Lookup(name)
			if def.RelNoise > 0 || def.AbsNoise > 0 {
				noisy++
			} else {
				exact++
			}
		}
		fmt.Fprintf(stdout, "%s: %d events (%d deterministic, %d noisy), %d programmable counters, %d counter constraints\n",
			p.Name, len(names), exact, noisy, p.Counters, len(p.Constraints))
		return nil
	}
	shown := 0
	for _, name := range names {
		if *grep != "" && !strings.Contains(name, *grep) {
			continue
		}
		def, _ := p.Catalog.Lookup(name)
		noise := "deterministic"
		if def.RelNoise > 0 {
			noise = fmt.Sprintf("noise %.1e", def.RelNoise)
		}
		constraint := ""
		if c, ok := p.Constraints[name]; ok && c.Fixed >= 0 {
			constraint = fmt.Sprintf("  [fixed counter %d]", c.Fixed)
		}
		fmt.Fprintf(stdout, "%-56s %-14s %s%s\n", name, noise, def.Desc, constraint)
		shown++
	}
	fmt.Fprintf(stdout, "-- %d of %d events\n", shown, len(names))
	return nil
}
