package main

import (
	"bytes"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/perfmetrics/eventlens/internal/catio"
	"github.com/perfmetrics/eventlens/internal/cli"
	"github.com/perfmetrics/eventlens/internal/goldie"
)

func runCmd(t *testing.T, args ...string) (string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	if err := run(args, &stdout, &stderr); err != nil {
		t.Fatalf("run(%q): %v\nstderr:\n%s", args, err, stderr.String())
	}
	return stdout.String(), stderr.String()
}

func TestGoldenList(t *testing.T) {
	out, _ := runCmd(t, "-list")
	goldie.Assert(t, "list", []byte(out))
}

// TestRunRoundTrip runs the cheapest benchmark end to end and reads the file
// back — catrun's whole contract, minus the golden-unfriendly file paths.
func TestRunRoundTrip(t *testing.T) {
	out := filepath.Join(t.TempDir(), "branch.json.gz")
	_, logs := runCmd(t, "-bench", "branch", "-out", out, "-reps", "2")
	if !strings.Contains(logs, "wrote") {
		t.Errorf("no progress log on stderr: %q", logs)
	}
	set, err := catio.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if set.Benchmark != "branch" || len(set.Order) == 0 {
		t.Errorf("round-trip set: benchmark %q, %d events", set.Benchmark, len(set.Order))
	}
}

func TestFlagSmoke(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-h"}, &stdout, &stderr); !errors.Is(err, flag.ErrHelp) {
		t.Errorf("-h: got %v, want flag.ErrHelp", err)
	}
	if !strings.Contains(stderr.String(), "-bench") {
		t.Error("-h did not print usage")
	}
	var ue *cli.UsageError
	if err := run([]string{"-nope"}, &stdout, &stderr); !errors.As(err, &ue) {
		t.Errorf("bad flag: got %v, want UsageError", err)
	}
	if err := run(nil, &stdout, &stderr); !errors.As(err, &ue) {
		t.Errorf("missing -bench/-out: got %v, want UsageError", err)
	}
}

// TestNegativeRunConfigRejected pins the fix for silently-ignored negative
// -reps/-threads: they are now usage errors.
func TestNegativeRunConfigRejected(t *testing.T) {
	for _, args := range [][]string{
		{"-bench", "branch", "-out", "x.json", "-reps", "-1"},
		{"-bench", "branch", "-out", "x.json", "-threads", "-3"},
	} {
		var stdout, stderr bytes.Buffer
		err := run(args, &stdout, &stderr)
		var ue *cli.UsageError
		if !errors.As(err, &ue) {
			t.Errorf("run(%q): got %v, want UsageError", args, err)
			continue
		}
		if !strings.Contains(err.Error(), "must be >= 1") {
			t.Errorf("run(%q): unhelpful message %q", args, err)
		}
	}
}

// TestProfileFlags runs a collection with -cpuprofile/-memprofile and
// checks both profiles land on disk non-empty — the `make profile`
// workflow documented in TESTING.md.
func TestProfileFlags(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.prof")
	mem := filepath.Join(dir, "mem.prof")
	out := filepath.Join(dir, "branch.json")
	_, logs := runCmd(t, "-bench", "branch", "-out", out, "-reps", "1",
		"-workers", "2", "-cpuprofile", cpu, "-memprofile", mem)
	if !strings.Contains(logs, "heap profile") {
		t.Errorf("no heap-profile log on stderr: %q", logs)
	}
	for _, path := range []string{cpu, mem} {
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatalf("profile %s: %v", path, err)
		}
		if fi.Size() == 0 {
			t.Errorf("profile %s is empty", path)
		}
	}
}
