// Command catrun executes one CAT benchmark on its simulated platform and
// writes the raw-event measurements to a JSON file (optionally gzipped) for
// offline analysis with cmd/analyze.
//
// Usage:
//
//	catrun -bench cpu-flops -out cpu-flops.json.gz [-reps 5] [-threads 1]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"github.com/perfmetrics/eventlens/internal/cat"
	"github.com/perfmetrics/eventlens/internal/catio"
	"github.com/perfmetrics/eventlens/internal/suite"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("catrun: ")
	benchName := flag.String("bench", "", "benchmark to run: "+strings.Join(suite.Names(), ", "))
	out := flag.String("out", "", "output path (.json or .json.gz)")
	reps := flag.Int("reps", 0, "repetitions (default: benchmark-specific)")
	threads := flag.Int("threads", 0, "measuring threads (default: benchmark-specific)")
	list := flag.Bool("list", false, "list available benchmarks and exit")
	csvOut := flag.String("csv", "", "also export measurements as CSV to this path")
	flag.Parse()

	if *list {
		for _, b := range suite.All() {
			fmt.Printf("%-10s %s (Table %s, Figure %s)\n", b.Name, b.Description, b.MetricTable, b.Figure)
		}
		return
	}
	if *benchName == "" || *out == "" {
		flag.Usage()
		os.Exit(2)
	}
	bench, err := suite.ByName(*benchName)
	if err != nil {
		log.Fatal(err)
	}
	cfg := bench.DefaultRun
	if *reps > 0 {
		cfg.Reps = *reps
	}
	if *threads > 0 {
		cfg.Threads = *threads
	}
	platform, err := bench.NewPlatform()
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("running %s on %s (%d events, %d reps, %d threads)",
		bench.Name, platform.Name, platform.Catalog.Len(), cfg.Reps, cfg.Threads)
	set, err := bench.Run(platform, cat.RunConfig{Reps: cfg.Reps, Threads: cfg.Threads})
	if err != nil {
		log.Fatal(err)
	}
	if err := catio.WriteFile(*out, set); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %d events x %d points to %s", len(set.Order), len(set.PointNames), *out)
	if *csvOut != "" {
		f, err := os.Create(*csvOut)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := catio.WriteCSV(f, set); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote CSV export to %s", *csvOut)
	}
}
