// Command catrun executes one CAT benchmark on its simulated platform and
// writes the raw-event measurements to a JSON file (optionally gzipped) for
// offline analysis with cmd/analyze.
//
// Usage:
//
//	catrun -bench cpu-flops -out cpu-flops.json.gz [-reps 5] [-threads 1]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"github.com/perfmetrics/eventlens/internal/cat"
	"github.com/perfmetrics/eventlens/internal/catio"
	"github.com/perfmetrics/eventlens/internal/cli"
	"github.com/perfmetrics/eventlens/internal/suite"
)

func main() {
	cli.Main("catrun", run)
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("catrun", flag.ContinueOnError)
	fs.SetOutput(stderr)
	benchName := fs.String("bench", "", "benchmark to run: "+strings.Join(suite.Names(), ", "))
	out := fs.String("out", "", "output path (.json or .json.gz)")
	reps := fs.Int("reps", 0, "repetitions (default: benchmark-specific)")
	threads := fs.Int("threads", 0, "measuring threads (default: benchmark-specific)")
	list := fs.Bool("list", false, "list available benchmarks and exit")
	csvOut := fs.String("csv", "", "also export measurements as CSV to this path")
	workers := fs.Int("workers", 0, "collection workers (0 means GOMAXPROCS, 1 is the serial reference path)")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile of the collection to this path")
	memProfile := fs.String("memprofile", "", "write a heap profile taken after collection to this path")
	if err := cli.ParseFlags(fs, args); err != nil {
		return err
	}

	if *list {
		for _, b := range suite.All() {
			fmt.Fprintf(stdout, "%-10s %s (Table %s, Figure %s)\n", b.Name, b.Description, b.MetricTable, b.Figure)
		}
		return nil
	}
	if *benchName == "" || *out == "" {
		fs.Usage()
		return &cli.UsageError{Err: fmt.Errorf("missing -bench or -out"), Quiet: true}
	}
	if *reps < 0 {
		return cli.Usagef("reps must be >= 1 (0 means the benchmark default), got %d", *reps)
	}
	if *threads < 0 {
		return cli.Usagef("threads must be >= 1 (0 means the benchmark default), got %d", *threads)
	}
	bench, err := suite.ByName(*benchName)
	if err != nil {
		return err
	}
	cfg := bench.DefaultRun
	if *reps > 0 {
		cfg.Reps = *reps
	}
	if *threads > 0 {
		cfg.Threads = *threads
	}
	platform, err := bench.NewPlatform()
	if err != nil {
		return err
	}
	fmt.Fprintf(stderr, "catrun: running %s on %s (%d events, %d reps, %d threads)\n",
		bench.Name, platform.Name, platform.Catalog.Len(), cfg.Reps, cfg.Threads)
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("catrun: cpu profile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	set, err := bench.Run(platform, cat.RunConfig{Reps: cfg.Reps, Threads: cfg.Threads, Workers: *workers})
	if err != nil {
		return err
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			return err
		}
		runtime.GC() // settle the heap so the profile shows retained memory
		if err := pprof.WriteHeapProfile(f); err != nil {
			_ = f.Close()
			return fmt.Errorf("catrun: heap profile: %w", err)
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "catrun: wrote heap profile to %s\n", *memProfile)
	}
	if err := catio.WriteFile(*out, set); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "catrun: wrote %d events x %d points to %s\n", len(set.Order), len(set.PointNames), *out)
	if *csvOut != "" {
		f, err := os.Create(*csvOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := catio.WriteCSV(f, set); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "catrun: wrote CSV export to %s\n", *csvOut)
	}
	return nil
}
