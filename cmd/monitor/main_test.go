package main

import (
	"bytes"
	"errors"
	"flag"
	"strings"
	"testing"

	"github.com/perfmetrics/eventlens/internal/cli"
	"github.com/perfmetrics/eventlens/internal/goldie"
)

func runCmd(t *testing.T, args ...string) string {
	t.Helper()
	var stdout, stderr bytes.Buffer
	if err := run(args, &stdout, &stderr); err != nil {
		t.Fatalf("run(%q): %v\nstderr:\n%s", args, err, stderr.String())
	}
	return stdout.String()
}

func TestGoldenTriad(t *testing.T) {
	goldie.Assert(t, "triad", []byte(runCmd(t, "-workload", "triad")))
}

func TestFlagSmoke(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-h"}, &stdout, &stderr); !errors.Is(err, flag.ErrHelp) {
		t.Errorf("-h: got %v, want flag.ErrHelp", err)
	}
	if !strings.Contains(stderr.String(), "-workload") {
		t.Error("-h did not print usage")
	}
	var ue *cli.UsageError
	if err := run([]string{"-nope"}, &stdout, &stderr); !errors.As(err, &ue) {
		t.Errorf("bad flag: got %v, want UsageError", err)
	}
	if err := run([]string{"-workload", "fortran"}, &stdout, &stderr); !errors.As(err, &ue) {
		t.Errorf("unknown workload: got %v, want UsageError", err)
	}
}
