// Command monitor is a miniature profiler built on auto-derived metric
// presets — the downstream consumer the paper's introduction motivates.
// It derives (or loads) PAPI-style presets for the simulated Sapphire
// Rapids, runs a workload on the CPU simulator, programs only the raw
// events the presets reference (in constraint-aware multiplexing rounds),
// and reports the metric values.
//
// Usage:
//
//	monitor -workload triad
//	monitor -workload mixed -n 1000
//	monitor -workload stencil -presets presets.txt   (use saved presets)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/perfmetrics/eventlens/internal/cat"
	"github.com/perfmetrics/eventlens/internal/cli"
	"github.com/perfmetrics/eventlens/internal/core"
	"github.com/perfmetrics/eventlens/internal/cpusim"
	"github.com/perfmetrics/eventlens/internal/machine"
	"github.com/perfmetrics/eventlens/internal/suite"
)

func main() {
	cli.Main("monitor", run)
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("monitor", flag.ContinueOnError)
	fs.SetOutput(stderr)
	workload := fs.String("workload", "triad", "workload: triad, daxpy, stencil, dot, mixed")
	n := fs.Int("n", 500, "workload size (loop trips)")
	presetsPath := fs.String("presets", "", "load presets from a file (default: derive from the CAT benchmark)")
	if err := cli.ParseFlags(fs, args); err != nil {
		return err
	}

	kernel := buildWorkload(*workload, *n)
	if kernel == nil {
		return cli.Usagef("unknown workload %q", *workload)
	}

	presets, err := loadOrDerivePresets(*presetsPath)
	if err != nil {
		return err
	}
	platform, err := machine.SapphireRapids()
	if err != nil {
		return err
	}

	// Union of events the presets need, and the multiplexing plan.
	seen := map[string]bool{}
	var events []string
	for _, p := range presets {
		for _, e := range p.Events {
			if !seen[e] {
				seen[e] = true
				events = append(events, e)
			}
		}
	}
	groups := platform.Groups(events)
	fmt.Fprintf(stdout, "monitoring %d events for %d presets in %d multiplexing round(s)\n\n",
		len(events), len(presets), len(groups))

	// Run the workload and measure.
	counts := cpusim.DefaultCore().Run(kernel)
	stats := cat.CPUStats(counts)
	vectors, err := platform.Measure([]machine.Stats{stats}, events, 0, 0)
	if err != nil {
		return err
	}

	// Evaluate every preset.
	fmt.Fprintf(stdout, "workload %s (n=%d):\n", kernel.Name, *n)
	for _, p := range presets {
		vals := make([]float64, len(p.Events))
		for i, e := range p.Events {
			vals[i] = vectors[e][0]
		}
		v, err := p.Evaluate(vals)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "  %-24s %12.0f\n", p.Name, v)
	}

	// Ground truth for the FLOP presets, straight from the simulator.
	dp, sp := cpusim.TrueOps(counts)
	fmt.Fprintf(stdout, "\nsimulator ground truth: DP ops %0.f, SP ops %0.f, instructions %d\n",
		dp, sp, counts.Instructions)
	return nil
}

// buildWorkload selects a kernel from the workload library.
func buildWorkload(name string, n int) *cpusim.Kernel {
	switch name {
	case "triad":
		return cpusim.TriadKernel(n)
	case "daxpy":
		return cpusim.DaxpyKernel(n)
	case "stencil":
		return cpusim.StencilKernel(n)
	case "dot":
		return cpusim.DotKernel(n)
	case "mixed":
		return cpusim.MixedPrecisionKernel(n)
	}
	return nil
}

// loadOrDerivePresets reads presets from a file, or runs the CAT CPU-FLOPs
// analysis to derive them fresh.
func loadOrDerivePresets(path string) ([]*core.Preset, error) {
	if path != "" {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		return core.ParsePresets(string(data))
	}
	bench, err := suite.ByName("cpu-flops")
	if err != nil {
		return nil, err
	}
	res, _, err := bench.Analyze(cat.RunConfig(bench.DefaultRun))
	if err != nil {
		return nil, err
	}
	defs, err := res.DefineMetrics(bench.Signatures)
	if err != nil {
		return nil, err
	}
	return core.ParsePresets(core.FormatPresets(defs, bench.Config.RoundTol, 1e-6))
}
