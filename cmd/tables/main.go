// Command tables regenerates the paper's tables:
//
//	Tables I-IV   — the metric signature tables (pure data)
//	Tables V-VIII — the metric definitions obtained by running the full
//	                pipeline on the simulated platforms
//
// Usage:
//
//	tables             (all tables)
//	tables -table 5    (one table, by number 1-8)
package main

import (
	"flag"
	"fmt"
	"io"

	"github.com/perfmetrics/eventlens/internal/cat"
	"github.com/perfmetrics/eventlens/internal/cli"
	"github.com/perfmetrics/eventlens/internal/core"
	"github.com/perfmetrics/eventlens/internal/suite"
)

var tableNames = [9]string{"", "I", "II", "III", "IV", "V", "VI", "VII", "VIII"}

func main() {
	cli.Main("tables", run)
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("tables", flag.ContinueOnError)
	fs.SetOutput(stderr)
	table := fs.Int("table", 0, "table number 1-8 (0 = all)")
	rounded := fs.Bool("rounded", false, "round metric coefficients to integers (Section VI-D)")
	if err := cli.ParseFlags(fs, args); err != nil {
		return err
	}
	if *table < 0 || *table > 8 {
		return cli.Usagef("table must be 0-8, got %d", *table)
	}
	// Signature tables come straight from the suite; metric tables need the
	// pipeline. Benchmarks are ordered so benchmark i produces signature
	// table i+1 and metric table i+5.
	for i, bench := range suite.All() {
		sigTable := i + 1
		metTable := i + 5
		if *table == 0 || *table == sigTable {
			title := fmt.Sprintf("Table %s: %s metric signatures", tableNames[sigTable], bench.Name)
			fmt.Fprint(stdout, core.FormatSignatureTable(title, bench.BasisSymbols, bench.Signatures))
			fmt.Fprintln(stdout)
		}
		if *table == 0 || *table == metTable {
			res, _, err := bench.Analyze(cat.RunConfig(bench.DefaultRun))
			if err != nil {
				return fmt.Errorf("%s: %v", bench.Name, err)
			}
			defs, err := res.DefineMetrics(bench.Signatures)
			if err != nil {
				return fmt.Errorf("%s: %v", bench.Name, err)
			}
			if *rounded {
				for j, d := range defs {
					defs[j] = d.Rounded(bench.Config.RoundTol)
				}
			}
			title := fmt.Sprintf("Table %s: %s metrics from raw events", tableNames[metTable], bench.Name)
			fmt.Fprint(stdout, core.FormatMetricTable(title, defs))
			fmt.Fprintln(stdout)
		}
	}
	return nil
}
