package main

import (
	"bytes"
	"errors"
	"flag"
	"testing"

	"github.com/perfmetrics/eventlens/internal/cli"
	"github.com/perfmetrics/eventlens/internal/goldie"
)

// TestGoldenReport runs the complete reproduction — all four benchmarks —
// and snapshots the markdown. A diff here means a paper-facing result moved.
func TestGoldenReport(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run(nil, &stdout, &stderr); err != nil {
		t.Fatalf("reproduction failed: %v\nstderr:\n%s", err, stderr.String())
	}
	goldie.Assert(t, "report", stdout.Bytes())
}

func TestFlagSmoke(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-h"}, &stdout, &stderr); !errors.Is(err, flag.ErrHelp) {
		t.Errorf("-h: got %v, want flag.ErrHelp", err)
	}
	var ue *cli.UsageError
	if err := run([]string{"-nope"}, &stdout, &stderr); !errors.As(err, &ue) {
		t.Errorf("bad flag: got %v, want UsageError", err)
	}
}
