// Command report runs the complete reproduction — all four CAT benchmarks on
// their simulated platforms, every stage of the analysis — and prints a
// markdown report checking each table and figure against the paper's
// expected shape. A non-zero exit status means the reproduction regressed.
//
// Usage:
//
//	report            (print the markdown report)
package main

import (
	"flag"
	"fmt"
	"io"

	"github.com/perfmetrics/eventlens/internal/cli"
	"github.com/perfmetrics/eventlens/internal/report"
)

func main() {
	cli.Main("report", run)
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("report", flag.ContinueOnError)
	fs.SetOutput(stderr)
	if err := cli.ParseFlags(fs, args); err != nil {
		return err
	}
	rep, err := report.Run()
	if err != nil {
		return err
	}
	fmt.Fprint(stdout, rep.Markdown())
	if failed := rep.Failed(); len(failed) > 0 {
		return fmt.Errorf("%d reproduction check(s) failed", len(failed))
	}
	return nil
}
