// Command report runs the complete reproduction — all four CAT benchmarks on
// their simulated platforms, every stage of the analysis — and prints a
// markdown report checking each table and figure against the paper's
// expected shape. A non-zero exit status means the reproduction regressed.
//
// Usage:
//
//	report            (print the markdown report)
package main

import (
	"fmt"
	"log"
	"os"

	"github.com/perfmetrics/eventlens/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("report: ")
	rep, err := report.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rep.Markdown())
	if failed := rep.Failed(); len(failed) > 0 {
		os.Exit(1)
	}
}
