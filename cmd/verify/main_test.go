package main

import (
	"bytes"
	"errors"
	"flag"
	"strings"
	"testing"

	"github.com/perfmetrics/eventlens/internal/cli"
)

// TestQuickSingleBenchmark exercises the whole driver on one cheap benchmark
// with a reduced case count — the same code path CI runs at -quick scale.
func TestQuickSingleBenchmark(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run([]string{"-quick", "-cases", "10", "-bench", "branch", "-root", "../.."}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("verify failed: %v\noutput:\n%s", err, stdout.String())
	}
	out := stdout.String()
	for _, want := range []string{"qrcp/gaussian", "metamorphic/permutation branch", "golden/snapshots", "0 failed"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestChaosLane runs the fault-injection lane on one benchmark — the CI
// chaos job's code path — and pins its replay: two runs of one seed must
// print byte-identical output.
func TestChaosLane(t *testing.T) {
	lane := func() string {
		var stdout, stderr bytes.Buffer
		err := run([]string{"-chaos", "-quick", "-bench", "branch", "-seed", "7"}, &stdout, &stderr)
		if err != nil {
			t.Fatalf("chaos lane failed: %v\noutput:\n%s", err, stdout.String())
		}
		return stdout.String()
	}
	out := lane()
	for _, want := range []string{"chaos/schedule", "chaos/replay branch", "chaos/recoverable branch", "chaos/unrecoverable branch", "0 failed"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "qrcp/gaussian") {
		t.Error("-chaos must not run the differential lane")
	}
	if again := lane(); again != out {
		t.Error("chaos lane output differs across runs of the same seed")
	}
}

func TestGoldenCheckMissingDir(t *testing.T) {
	res := checkGoldens(t.TempDir())
	if res.Err == nil {
		t.Fatal("missing golden directories must fail the check")
	}
	if !strings.Contains(res.Err.Error(), "-update") {
		t.Errorf("error should say how to regenerate: %v", res.Err)
	}
}

func TestFlagSmoke(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-h"}, &stdout, &stderr); !errors.Is(err, flag.ErrHelp) {
		t.Errorf("-h: got %v, want flag.ErrHelp", err)
	}
	if !strings.Contains(stderr.String(), "-quick") {
		t.Error("-h did not print usage")
	}
	var ue *cli.UsageError
	if err := run([]string{"-nope"}, &stdout, &stderr); !errors.As(err, &ue) {
		t.Errorf("bad flag: got %v, want UsageError", err)
	}
	if err := run([]string{"-bench", "no-such-bench"}, &stdout, &stderr); !errors.As(err, &ue) {
		t.Errorf("unknown benchmark: got %v, want UsageError", err)
	}
}
