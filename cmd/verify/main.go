// Command verify is the repository's differential and metamorphic
// verification driver. It cross-checks the production numerics against the
// independent oracles in internal/oracle, runs every metamorphic pipeline
// invariant on every suite benchmark, and confirms the golden CLI snapshots
// exist. A non-zero exit status means the pipeline can no longer be trusted
// mechanically — some check found a disagreement.
//
// Usage:
//
//	verify            (full run: 200 randomized problems per family)
//	verify -quick     (CI lane: 50 problems per family, fewer seeds)
//	verify -bench branch -cases 25   (one benchmark, custom case count)
//	verify -chaos     (fault-injection lane only: replay, recovery,
//	                   degradation invariants on every benchmark)
//
// See TESTING.md for the verification strategy and tolerance rationale.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"github.com/perfmetrics/eventlens/internal/cli"
	"github.com/perfmetrics/eventlens/internal/machine"
	"github.com/perfmetrics/eventlens/internal/matrix"
	"github.com/perfmetrics/eventlens/internal/oracle"
	"github.com/perfmetrics/eventlens/internal/platdef"
	"github.com/perfmetrics/eventlens/internal/suite"
)

// goldenCLIs lists the commands whose golden snapshots must exist, relative
// to the repository root.
var goldenCLIs = []string{"analyze", "report", "tables", "figures", "avail", "catrun", "monitor", "validate"}

func main() {
	cli.Main("verify", run)
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("verify", flag.ContinueOnError)
	fs.SetOutput(stderr)
	quick := fs.Bool("quick", false, "reduced run for CI: 50 cases per differential family, fewer metamorphic seeds")
	chaos := fs.Bool("chaos", false, "run only the fault-injection chaos lane (replay/recovery/degradation invariants)")
	seed := fs.Int64("seed", 1, "base seed for the randomized problem generator")
	cases := fs.Int("cases", 0, "override randomized cases per differential family")
	benchFilter := fs.String("bench", "", "only run metamorphic checks for these comma-separated benchmarks (default all)")
	skipGoldens := fs.Bool("skip-goldens", false, "skip the golden-snapshot existence check (for runs outside the repo root)")
	root := fs.String("root", ".", "repository root, for locating golden files")
	if err := cli.ParseFlags(fs, args); err != nil {
		return err
	}

	n, mseeds, wconfigs := 200, 5, 2
	if *quick {
		n, mseeds, wconfigs = 50, 2, 1
	}
	if *cases > 0 {
		n = *cases
	}
	benches, err := selectBenchmarks(*benchFilter)
	if err != nil {
		return cli.Usagef("%v", err)
	}

	var results []oracle.CheckResult

	// Chaos lane: the fault-injection subsystem's replay, recovery and
	// degradation invariants, end to end on real benchmarks. Runs alone —
	// its failures mean the resilience layer, not the numerics, broke.
	if *chaos {
		if *quick && *benchFilter == "" && len(benches) > 2 {
			benches = benches[:2]
		}
		fmt.Fprintf(stdout, "chaos checks (seed %d, %d benchmarks):\n", *seed, len(benches))
		res := oracle.CheckChaosSchedule(uint64(*seed))
		fmt.Fprintln(stdout, res.String())
		results = append(results, res)
		for _, bench := range benches {
			for _, res := range []oracle.CheckResult{
				oracle.CheckChaosReplay(bench, uint64(*seed)),
				oracle.CheckChaosRecoverable(bench, uint64(*seed)),
				oracle.CheckChaosUnrecoverable(bench, uint64(*seed)),
			} {
				fmt.Fprintln(stdout, res.String())
				results = append(results, res)
			}
		}
		return summarize(stdout, results)
	}

	// Differential lane: production numerics vs the independent oracles.
	fmt.Fprintf(stdout, "differential checks (seed %d, %d cases per family):\n", *seed, n)
	p := oracle.NewProblems(*seed)
	tol := oracle.DefaultTol()
	for _, res := range []oracle.CheckResult{
		oracle.CheckQRCPGaussian(p, n, tol),
		oracle.CheckQRCPGraded(p, n, tol),
		oracle.CheckQRCPRankDeficient(p, n),
		oracle.CheckQRSolve(p, n, tol),
		oracle.CheckLeastSquaresUnderdetermined(p, n, tol),
		oracle.CheckProjector(p, n, tol),
	} {
		fmt.Fprintln(stdout, res.String())
		results = append(results, res)
	}

	// Metamorphic lane: pipeline invariants on every suite benchmark.
	seeds := make([]int64, mseeds)
	for i := range seeds {
		seeds[i] = *seed + int64(i)
	}
	fmt.Fprintf(stdout, "\nmetamorphic checks (%d seeds per invariant):\n", mseeds)
	for _, bench := range benches {
		f, err := oracle.NewFixture(bench)
		if err != nil {
			return fmt.Errorf("fixture %s: %v", bench.Name, err)
		}
		res := oracle.CheckScaling(f, []float64{2, 3.5, 0.125, 1e4}, tol)
		fmt.Fprintln(stdout, res.String())
		results = append(results, res)

		res = oracle.CheckPermutation(f, seeds, tol)
		fmt.Fprintln(stdout, res.String())
		results = append(results, res)

		res, skipped := oracle.CheckJitter(f, seeds)
		if skipped > 0 {
			fmt.Fprintf(stdout, "     (%d events inside the jitter guard band were not asserted)\n", skipped)
		}
		fmt.Fprintln(stdout, res.String())
		results = append(results, res)

		res = oracle.CheckWorkersDeterminism(bench, *seed, wconfigs)
		fmt.Fprintln(stdout, res.String())
		results = append(results, res)
	}

	// Platform-data lane: every committed platform definition must
	// regenerate byte-identically from the platform it loads into, and the
	// composability matrix must be worker-count independent.
	fmt.Fprintln(stdout, "\nplatform-data checks:")
	res := checkPlatdefByteIdentity()
	fmt.Fprintln(stdout, res.String())
	results = append(results, res)
	res = checkMatrixDeterminism()
	fmt.Fprintln(stdout, res.String())
	results = append(results, res)

	// Golden lane: every CLI must have committed snapshots.
	if !*skipGoldens {
		fmt.Fprintln(stdout)
		res := checkGoldens(*root)
		fmt.Fprintln(stdout, res.String())
		results = append(results, res)
	}

	return summarize(stdout, results)
}

// summarize prints the pass/fail tally and converts failures to an error.
func summarize(stdout io.Writer, results []oracle.CheckResult) error {
	failed := 0
	for _, r := range results {
		if r.Err != nil {
			failed++
		}
	}
	fmt.Fprintf(stdout, "\nverify: %d checks, %d failed\n", len(results), failed)
	if failed > 0 {
		return fmt.Errorf("%d verification check(s) failed", failed)
	}
	return nil
}

// selectBenchmarks resolves the -bench filter against the suite registry.
func selectBenchmarks(filter string) ([]suite.Benchmark, error) {
	if filter == "" {
		return suite.All(), nil
	}
	var out []suite.Benchmark
	for _, name := range strings.Split(filter, ",") {
		b, err := suite.ByName(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		out = append(out, b)
	}
	return out, nil
}

// checkPlatdefByteIdentity round-trips every committed platform definition:
// file bytes -> loaded platform -> exported definition -> canonical bytes
// must reproduce the file exactly. A mismatch means the loader, the
// exporter, or the committed data drifted.
func checkPlatdefByteIdentity() oracle.CheckResult {
	res := oracle.CheckResult{Name: "platdef/byte-identity"}
	for _, name := range platdef.BuiltinNames() {
		res.Cases++
		want, err := platdef.BuiltinBytes(name)
		if err != nil {
			res.Err = err
			return res
		}
		p, err := machine.BuiltinPlatform(name)
		if err != nil {
			res.Err = err
			return res
		}
		def, err := machine.ExportDef(p)
		if err != nil {
			res.Err = fmt.Errorf("platform %s: %v", name, err)
			return res
		}
		if !bytes.Equal(def.Canonical(), want) {
			res.Err = fmt.Errorf("platform %s: exported canonical bytes differ from the committed file", name)
			return res
		}
	}
	return res
}

// checkMatrixDeterminism runs one composability-matrix slice serially and in
// parallel; the canonical envelopes must be byte-identical.
func checkMatrixDeterminism() oracle.CheckResult {
	res := oracle.CheckResult{Name: "matrix/worker-determinism", Cases: 2}
	reg, err := machine.NewRegistry()
	if err != nil {
		res.Err = err
		return res
	}
	req := matrix.Request{Platforms: []string{"spr", "graviton"}, Benchmarks: []string{"branch"}, Workers: 1}
	serial, err := matrix.Run(context.Background(), reg, req)
	if err != nil {
		res.Err = err
		return res
	}
	req.Workers = 8
	parallel, err := matrix.Run(context.Background(), reg, req)
	if err != nil {
		res.Err = err
		return res
	}
	if !bytes.Equal(matrix.NewEnvelope(serial).CanonicalJSON(), matrix.NewEnvelope(parallel).CanonicalJSON()) {
		res.Err = fmt.Errorf("matrix envelope differs between Workers=1 and Workers=8")
	}
	return res
}

// checkGoldens verifies each golden CLI has at least one committed snapshot.
func checkGoldens(root string) oracle.CheckResult {
	res := oracle.CheckResult{Name: "golden/snapshots", Cases: len(goldenCLIs)}
	for _, name := range goldenCLIs {
		dir := filepath.Join(root, "cmd", name, "testdata", "golden")
		entries, err := os.ReadDir(dir)
		if err != nil {
			res.Err = fmt.Errorf("cmd/%s has no golden directory (%v) — run `go test ./cmd/%s -update`", name, err, name)
			return res
		}
		found := 0
		for _, e := range entries {
			if strings.HasSuffix(e.Name(), ".golden") {
				found++
			}
		}
		if found == 0 {
			res.Err = fmt.Errorf("cmd/%s has an empty golden directory — run `go test ./cmd/%s -update`", name, name)
			return res
		}
	}
	return res
}
